"""Trace analysis: compute the paper's quantities straight from spans.

A recorded trace — an in-memory :class:`~repro.obs.context.ObsContext` or
an exported file — already contains everything the paper's evaluation
measures; this module turns spans into those numbers:

* **Per-call delay metrics** (Section II notation): for each collective
  call with per-rank arrivals ``a_i`` and exits ``e_i``,

  - *last delay*    ``d_hat = max(e_i) - max(a_i)`` — completion time seen
    by the last-arriving process, the paper's primary cost metric,
  - *total delay*   ``d_star = max(e_i) - min(a_i)`` — first arrival to
    last exit, the full wall extent of the call,
  - *arrival spread* ``omega = max(a_i) - min(a_i)`` — the process-arrival
    imbalance driving algorithm selection.

* **Arrival-pattern reconstruction** (Section V-A): per-rank average delay
  relative to the first arrival across all calls — the replayable
  *FT-Scenario* procedure, applied to spans instead of tracer events.

* **Imbalance factors**: ``omega / d_hat`` per call (how large the arrival
  spread is relative to the work it delays) and ``omega`` against an
  optional external baseline (the paper's ``kappa = omega / T`` with ``T``
  a balanced-case completion time).

* **Comm-volume matrices**: per ``(src, dst)`` byte and message counts
  from per-message engine spans (``record_messages=True`` sessions).

* **Fabric-link attribution**: from the link records of a
  ``record_links=True`` session (see :mod:`repro.obs.linkstats`),
  per-link utilization totals, contention wait charged per link ×
  collective/algorithm, binned utilization timelines (the weather map's
  raw form), and hotspot ranking.

* **Algorithm phase breakdown**: time per span name on the rank tracks —
  skew waits vs. time inside each collective algorithm.

* **Critical-path extraction**: walk the engine span graph backward from
  the last exit, jumping along the latest-delivered message into its
  sender, attributing every second of ``d_star`` to *compute* (a rank
  holding the path between message events), *link* (a message in flight),
  or *skew* (waiting for the path's origin rank to arrive).  The
  attribution is exact: ``compute + link + skew == d_star``.

Sources
-------
:meth:`TraceAnalysis.from_context` reads a live session;
:meth:`TraceAnalysis.from_file` loads an exported JSONL stream
(bit-exact) or a Perfetto JSON trace (timestamps make a float round trip
through microseconds, so values may differ in the last ulp).  Analyses of
the same run from either source agree because all quantities derive from
the deterministic virtual-time spans.

Merged multi-cell traces (see :mod:`repro.obs.collect`) tag every span
with its ``cell`` index; single-cell traces recorded directly (e.g.
``repro-mpi profile``) have no tag and group under cell ``None``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.errors import TraceFormatError
from repro.obs.export import load_perfetto, read_jsonl
from repro.obs.linkstats import link_name
from repro.obs.spans import VIRTUAL

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.context import ObsContext
    from repro.patterns.generator import ArrivalPattern
    from repro.tracing.tracer import CollectiveTracer

#: Metric instruments measuring *host* time.  They are honest but
#: nondeterministic — two identical runs land different values — so
#: determinism comparisons (trace parity tests, :func:`diff_payloads`)
#: must exclude them.  Everything else in a snapshot is derived from
#: simulated time or event counts and is bit-reproducible.
HOST_TIME_METRICS = frozenset({"executor.cell_seconds"})

#: Dotted payload paths :func:`diff_payloads` skips by default: host-time
#: measurements that legitimately differ between runs of the same config.
DEFAULT_DIFF_IGNORE = (
    "metrics.executor.cell_seconds",
    "engine.wall_seconds",
    "engine.events_per_sec",
)


# --------------------------------------------------------------------------- #
# Value objects
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class CollectiveCall:
    """One collective call reconstructed from per-rank spans.

    ``arrivals``/``exits`` align with ``ranks`` (ascending rank order).
    """

    name: str                 #: span name, ``"{collective}/{algorithm}"``
    cell: int | None          #: merged-cell index (None in single-cell traces)
    rep: int                  #: repetition index within the cell
    ranks: tuple[int, ...]
    arrivals: tuple[float, ...]
    exits: tuple[float, ...]

    @property
    def last_delay(self) -> float:
        """``d_hat = max(e_i) - max(a_i)`` — the paper's primary metric."""
        return max(self.exits) - max(self.arrivals)

    @property
    def total_delay(self) -> float:
        """``d_star = max(e_i) - min(a_i)`` — first arrival to last exit."""
        return max(self.exits) - min(self.arrivals)

    @property
    def arrival_spread(self) -> float:
        """``omega = max(a_i) - min(a_i)`` — the process arrival imbalance."""
        return max(self.arrivals) - min(self.arrivals)

    def delays(self) -> tuple[float, ...]:
        """Per-rank arrival delay relative to the first arrival."""
        first = min(self.arrivals)
        return tuple(a - first for a in self.arrivals)


@dataclass(frozen=True)
class CriticalPath:
    """The longest causally linked chain ending at a call's last exit.

    ``steps`` runs backward in time (last exit first).  The three
    attribution buckets partition ``total`` exactly:

    * ``compute`` — a rank on the path holding between message events,
    * ``link``    — a message in flight (sender post to receiver delivery),
    * ``skew``    — the gap between the call's first arrival and the
      arrival of the rank the path originates on: pure waiting caused by
      the arrival pattern, before the path's origin did any work.
    """

    call: CollectiveCall
    steps: tuple[dict, ...]
    compute: float
    link: float
    skew: float

    @property
    def total(self) -> float:
        """Equals ``call.total_delay`` (and ``compute + link + skew``)."""
        return self.compute + self.link + self.skew


@dataclass(frozen=True)
class CommMatrix:
    """Per-(src, dst) message traffic extracted from engine message spans."""

    ranks: tuple[int, ...]
    #: ``bytes_sent[src][dst]`` — payload bytes delivered src -> dst.
    bytes_sent: dict[int, dict[int, float]] = field(default_factory=dict)
    #: ``messages[src][dst]`` — delivered message count src -> dst.
    messages: dict[int, dict[int, int]] = field(default_factory=dict)

    @property
    def total_bytes(self) -> float:
        return sum(v for row in self.bytes_sent.values() for v in row.values())

    @property
    def total_messages(self) -> int:
        return sum(v for row in self.messages.values() for v in row.values())

    def to_dict(self) -> dict:
        """JSON form with string keys, sorted — deterministic."""
        return {
            "ranks": list(self.ranks),
            "total_bytes": self.total_bytes,
            "total_messages": self.total_messages,
            "bytes": {str(s): {str(d): self.bytes_sent[s][d]
                               for d in sorted(self.bytes_sent[s])}
                      for s in sorted(self.bytes_sent)},
            "messages": {str(s): {str(d): self.messages[s][d]
                                  for d in sorted(self.messages[s])}
                         for s in sorted(self.messages)},
        }


# --------------------------------------------------------------------------- #
# The analysis engine
# --------------------------------------------------------------------------- #

def _is_rank_track(track: str) -> bool:
    return track.startswith("rank ")


def _is_msg_track(track: str) -> bool:
    return track.startswith("msgs ")


class TraceAnalysis:
    """Computes the paper's metrics from one trace, however it was loaded.

    Construction normalizes the source into a list of plain span dicts
    (virtual domain only — wall-clock spans carry no simulated structure),
    so every method works identically on live contexts, JSONL streams, and
    Perfetto exports.
    """

    def __init__(self, spans: Sequence[dict], run_id: str = "",
                 metrics: dict[str, dict] | None = None,
                 dropped: int = 0,
                 links: Sequence[dict] | None = None,
                 dropped_links: int = 0) -> None:
        self.run_id = run_id
        self.metrics = dict(metrics or {})
        self.dropped = int(dropped)
        self.spans: list[dict] = [
            s for s in spans if s.get("domain", VIRTUAL) == VIRTUAL
        ]
        #: Fabric link records (:data:`repro.obs.linkstats.FIELDS` dicts)
        #: from a ``record_links=True`` session; empty otherwise.
        self.links: list[dict] = list(links or [])
        self.dropped_links = int(dropped_links)
        self._calls: list[CollectiveCall] | None = None

    # -- constructors --------------------------------------------------- #

    @classmethod
    def from_context(cls, ctx: "ObsContext") -> "TraceAnalysis":
        """Analyze a live (enabled) observability context."""
        recorder = ctx.spans
        spans = [s.to_dict() for s in recorder] if recorder is not None else []
        links = ctx.links
        return cls(spans, run_id=ctx.run_id, metrics=ctx.metrics.snapshot(),
                   dropped=recorder.dropped if recorder is not None else 0,
                   links=links.to_dicts() if links is not None else None,
                   dropped_links=links.dropped if links is not None else 0)

    @classmethod
    def from_file(cls, path) -> "TraceAnalysis":
        """Load an exported trace: JSONL stream or Perfetto JSON.

        JSONL round-trips bit-exactly; Perfetto timestamps pass through
        microseconds, so values can differ from the source in the last ulp.
        """
        try:
            stream = read_jsonl(path)
        except TraceFormatError:
            return cls._from_perfetto(load_perfetto(path), str(path))
        end = stream.get("end") or {}
        return cls(stream["spans"],
                   run_id=stream["header"].get("run_id", ""),
                   metrics=stream["metrics"],
                   dropped=int(end.get("dropped", 0)),
                   links=stream.get("links"),
                   dropped_links=int(end.get("dropped_links", 0)))

    @classmethod
    def _from_perfetto(cls, payload: dict, source: str) -> "TraceAnalysis":
        tracks: dict[tuple[int, int], str] = {}
        for ev in payload["traceEvents"]:
            if ev.get("ph") == "M" and ev.get("name") == "thread_name":
                tracks[(ev["pid"], ev["tid"])] = str(ev["args"]["name"])
        spans: list[dict] = []
        for ev in payload["traceEvents"]:
            if ev.get("ph") != "X":
                continue
            args = dict(ev.get("args") or {})
            span_id = args.pop("span_id", None)
            parent_id = args.pop("parent_id", None)
            key = (ev.get("pid"), ev.get("tid"))
            spans.append({
                "span_id": span_id,
                "parent_id": parent_id,
                "name": ev["name"],
                "track": tracks.get(key, f"track {key[1]}"),
                "domain": ev.get("cat", VIRTUAL),
                "start": ev["ts"] / 1e6,
                "end": (ev["ts"] + ev.get("dur", 0.0)) / 1e6,
                "args": args or None,
            })
        other = payload.get("otherData") or {}
        return cls(spans, run_id=str(other.get("run_id", source)),
                   dropped=int(other.get("dropped_spans", 0)),
                   links=other.get("links"),
                   dropped_links=int(other.get("dropped_links", 0)))

    # -- collective calls ------------------------------------------------ #

    def calls(self, collective: str | None = None,
              cell: int | None = None) -> list[CollectiveCall]:
        """All reconstructed collective calls, in (cell, rep) order.

        A "call" is the k-th collective span on each rank track of one
        cell — rank tracks record one ``{collective}/{algorithm}`` span per
        repetition, in time order.  Calls not covering every rank of their
        cell (truncated ring buffer) are dropped rather than reported with
        misleading extrema.  Filters: ``collective`` matches the family
        prefix of the span name; ``cell`` selects one merged cell.
        """
        if self._calls is None:
            self._calls = self._reconstruct_calls()
        out = self._calls
        if collective is not None:
            out = [c for c in out if c.name.split("/", 1)[0] == collective]
        if cell is not None:
            out = [c for c in out if c.cell == cell]
        return list(out)

    def _reconstruct_calls(self) -> list[CollectiveCall]:
        per: dict[tuple[Any, int], list[dict]] = {}
        for s in self.spans:
            track = s["track"]
            if not _is_rank_track(track) or "/" not in s["name"]:
                continue
            cell = (s.get("args") or {}).get("cell")
            per.setdefault((cell, int(track[5:])), []).append(s)
        cells: dict[Any, dict[int, list[dict]]] = {}
        for (cell, rank), lst in per.items():
            lst.sort(key=lambda s: (s["start"], s.get("span_id") or 0))
            cells.setdefault(cell, {})[rank] = lst
        calls: list[CollectiveCall] = []
        for cell in sorted(cells, key=lambda c: -1 if c is None else c):
            by_rank = cells[cell]
            ranks = tuple(sorted(by_rank))
            nreps = min(len(v) for v in by_rank.values())
            for rep in range(nreps):
                row = [by_rank[r][rep] for r in ranks]
                calls.append(CollectiveCall(
                    name=row[0]["name"], cell=cell, rep=rep, ranks=ranks,
                    arrivals=tuple(s["start"] for s in row),
                    exits=tuple(s["end"] for s in row),
                ))
        return calls

    # -- paper metrics --------------------------------------------------- #

    def last_delays(self, collective: str | None = None) -> list[float]:
        """``d_hat`` per call (paper's primary cost metric)."""
        return [c.last_delay for c in self.calls(collective)]

    def arrival_pattern(self, collective: str | None = None,
                        name: str = "reconstructed") -> "ArrivalPattern":
        """Section V-A reconstruction: per-rank mean delay vs. first arrival.

        Raises :class:`~repro.errors.TraceFormatError` when the trace holds
        no (matching) collective calls, or calls disagree on rank count.
        """
        import numpy as np

        from repro.patterns.generator import ArrivalPattern

        calls = self.calls(collective)
        if not calls:
            what = f"{collective!r} calls" if collective else "collective calls"
            raise TraceFormatError(f"trace contains no {what}")
        width = len(calls[0].ranks)
        if any(len(c.ranks) != width for c in calls):
            raise TraceFormatError(
                "calls span different rank counts; filter by cell= first"
            )
        rows = np.array([c.delays() for c in calls])
        return ArrivalPattern(name, rows.mean(axis=0))

    def imbalance(self, collective: str | None = None,
                  baseline: float | None = None) -> dict:
        """Arrival-imbalance factors over the (matching) calls.

        * ``spread_over_last_delay`` — mean and max of ``omega / d_hat``
          per call: how large the arrival spread is relative to the
          completion time the last arriver still pays.
        * ``mean_delay_over_last_delay`` — mean per-rank delay normalized
          the same way (less extremum-driven than the spread).
        * ``spread_over_baseline`` — the paper's ``kappa = omega / T``
          when a balanced-case completion time ``T`` is supplied.
        """
        calls = self.calls(collective)
        if not calls:
            raise TraceFormatError("trace contains no collective calls")
        ratios: list[float] = []
        mean_ratios: list[float] = []
        spreads: list[float] = []
        for c in calls:
            spreads.append(c.arrival_spread)
            d = c.last_delay
            if d > 0:
                ratios.append(c.arrival_spread / d)
                mean_ratios.append(
                    (sum(c.delays()) / len(c.ranks)) / d)
        out: dict[str, Any] = {
            "calls": len(calls),
            "mean_arrival_spread": sum(spreads) / len(spreads),
            "max_arrival_spread": max(spreads),
            "spread_over_last_delay": {
                "mean": sum(ratios) / len(ratios) if ratios else 0.0,
                "max": max(ratios) if ratios else 0.0,
            },
            "mean_delay_over_last_delay": {
                "mean": (sum(mean_ratios) / len(mean_ratios)
                         if mean_ratios else 0.0),
            },
        }
        if baseline is not None:
            if baseline <= 0:
                raise TraceFormatError(f"baseline must be > 0, got {baseline}")
            out["spread_over_baseline"] = {
                "mean": out["mean_arrival_spread"] / baseline,
                "max": out["max_arrival_spread"] / baseline,
            }
        return out

    # -- communication structure ----------------------------------------- #

    def message_spans(self, cell: int | None = None) -> list[dict]:
        """Per-message engine spans (``record_messages=True`` sessions)."""
        out = []
        for s in self.spans:
            if s["name"] != "msg" or not _is_msg_track(s["track"]):
                continue
            if cell is not None and (s.get("args") or {}).get("cell") != cell:
                continue
            out.append(s)
        return out

    def comm_matrix(self, cell: int | None = None) -> CommMatrix:
        """Byte/message traffic per (src, dst) pair from message spans."""
        byts: dict[int, dict[int, float]] = {}
        counts: dict[int, dict[int, int]] = {}
        ranks: set[int] = set()
        for s in self.message_spans(cell):
            args = s.get("args") or {}
            src, dst = int(args["src"]), int(args["dst"])
            ranks.update((src, dst))
            row = byts.setdefault(src, {})
            row[dst] = row.get(dst, 0.0) + float(args.get("bytes", 0.0))
            crow = counts.setdefault(src, {})
            crow[dst] = crow.get(dst, 0) + 1
        return CommMatrix(ranks=tuple(sorted(ranks)), bytes_sent=byts,
                          messages=counts)

    def phase_breakdown(self, cell: int | None = None) -> dict[str, dict]:
        """Total time and count per span name on the rank tracks.

        Separates skew waiting (``skew_wait``) from time inside each
        collective algorithm (``{collective}/{algorithm}``) — summed over
        ranks and repetitions, so values are rank-seconds.
        """
        out: dict[str, dict] = {}
        for s in self.spans:
            if not _is_rank_track(s["track"]):
                continue
            if cell is not None and (s.get("args") or {}).get("cell") != cell:
                continue
            agg = out.setdefault(s["name"], {"count": 0, "seconds": 0.0})
            agg["count"] += 1
            agg["seconds"] += s["end"] - s["start"]
        return dict(sorted(out.items()))

    # -- fabric links ------------------------------------------------------ #

    def link_usage(self) -> list[dict]:
        """Per-link utilization totals from the fabric link records.

        One row per distinct ``(port, cls, direction)`` — busy seconds,
        bytes, message count, and contention-wait seconds summed over the
        whole trace — sorted by that key, so the output is deterministic.
        Empty when the trace was not a ``record_links=True`` session.
        """
        totals: dict[tuple[int, int, int], dict] = {}
        for r in self.links:
            key = (int(r["port"]), int(r["cls"]), int(r["direction"]))
            agg = totals.get(key)
            if agg is None:
                totals[key] = agg = {"busy": 0.0, "bytes": 0.0,
                                     "messages": 0, "wait": 0.0}
            agg["busy"] += float(r["busy"])
            agg["bytes"] += float(r["nbytes"])
            agg["messages"] += int(r["messages"])
            agg["wait"] += float(r["wait"])
        return [
            {"port": p, "cls": c, "direction": d, "link": link_name(p, c, d),
             **totals[(p, c, d)]}
            for p, c, d in sorted(totals)
        ]

    def link_attribution(self) -> list[dict]:
        """Contention wait charged per link × collective/algorithm.

        ``wait`` is the seconds traffic sat ready but blocked behind other
        claims of the same port, summed per ``(link, activity)`` where
        ``activity`` is the ``"{collective}/{algorithm}"`` label active at
        claim time (``"p2p"`` for raw point-to-point traffic).  This is
        the "which collective made this link hot" answer: sorted rows,
        heaviest attribution first within each link.
        """
        waits: dict[tuple[int, int, int, str], dict] = {}
        for r in self.links:
            activity = r.get("activity") or "p2p"
            key = (int(r["port"]), int(r["cls"]), int(r["direction"]),
                   activity)
            agg = waits.get(key)
            if agg is None:
                waits[key] = agg = {"busy": 0.0, "bytes": 0.0,
                                    "messages": 0, "wait": 0.0}
            agg["busy"] += float(r["busy"])
            agg["bytes"] += float(r["nbytes"])
            agg["messages"] += int(r["messages"])
            agg["wait"] += float(r["wait"])
        rows = [
            {"port": p, "cls": c, "direction": d, "link": link_name(p, c, d),
             "activity": act, **waits[(p, c, d, act)]}
            for p, c, d, act in waits
        ]
        rows.sort(key=lambda r: (r["port"], r["cls"], r["direction"],
                                 -r["wait"], -r["busy"], r["activity"]))
        return rows

    def link_hotspots(self, top: int | None = None) -> list[dict]:
        """Links ranked hottest first: by wait, then busy, then key.

        The top entry is *the* congestion hotspot — the port whose FIFO
        queued the most ready-but-blocked traffic.  Ties (e.g. a perfectly
        symmetric exchange) break deterministically on busy seconds and
        then the link key, so exact and hybrid runs of the same case
        agree on the ranking.
        """
        ranked = sorted(
            self.link_usage(),
            key=lambda r: (-r["wait"], -r["busy"],
                           r["port"], r["cls"], r["direction"]),
        )
        return ranked[:top] if top is not None else ranked

    def link_timeline(self, bins: int = 60) -> dict:
        """Binned per-link busy-fraction timeline — the weather map's data.

        Splits the trace's link-record extent into ``bins`` equal slots
        and spreads each record's busy seconds uniformly over the slots
        its ``[start, end]`` interval overlaps (exact for single-message
        records; an even-occupancy approximation for flow-batch
        aggregates, whose envelope spans a whole phase).  Returns
        ``{"t0", "t1", "bin_seconds", "bins", "rows"}`` where each row is
        ``{"port", "cls", "direction", "link", "busy"}`` with ``busy`` a
        per-bin list of busy-fraction floats in ``[0, 1]`` (aggregates can
        exceed 1 when several messages overlap on a flow batch; the
        renderers clamp).  Rows sort by link key.
        """
        if not self.links:
            return {"t0": 0.0, "t1": 0.0, "bin_seconds": 0.0,
                    "bins": bins, "rows": []}
        t0 = min(float(r["start"]) for r in self.links)
        t1 = max(float(r["end"]) for r in self.links)
        width = (t1 - t0) / bins if t1 > t0 else 0.0
        rows: dict[tuple[int, int, int], list[float]] = {}
        for r in self.links:
            key = (int(r["port"]), int(r["cls"]), int(r["direction"]))
            slots = rows.get(key)
            if slots is None:
                rows[key] = slots = [0.0] * bins
            start, end = float(r["start"]), float(r["end"])
            busy = float(r["busy"])
            if width <= 0.0 or end <= start:
                slots[0] += busy
                continue
            # Spread busy over the overlapped bins, proportional to overlap.
            lo = min(int((start - t0) / width), bins - 1)
            hi = min(int((end - t0) / width), bins - 1)
            span = end - start
            for b in range(lo, hi + 1):
                b0, b1 = t0 + b * width, t0 + (b + 1) * width
                overlap = min(end, b1) - max(start, b0)
                if overlap > 0:
                    slots[b] += busy * (overlap / span)
        out_rows = [
            {"port": p, "cls": c, "direction": d, "link": link_name(p, c, d),
             "busy": ([b / width for b in rows[(p, c, d)]] if width > 0
                      else rows[(p, c, d)])}
            for p, c, d in sorted(rows)
        ]
        return {"t0": t0, "t1": t1, "bin_seconds": width, "bins": bins,
                "rows": out_rows}

    # -- critical path ---------------------------------------------------- #

    def critical_path(self, call: CollectiveCall | None = None) -> CriticalPath:
        """Extract the critical path of one call (default: the call with
        the largest ``d_star``; ties break to the earliest call).

        Requires per-message spans (``record_messages=True``); without
        them the whole path degenerates to one compute step on the
        last-exiting rank.  The walk runs backward from the last exit:
        at each step it finds the latest message delivered to the current
        rank (after that rank's arrival), attributes the gap since the
        delivery to *compute*, the message's flight to *link*, and jumps
        to the sender at its post time.  When no earlier message exists,
        the remaining time back to the rank's arrival is compute and the
        gap from the call's first arrival to that rank's arrival is skew.
        """
        if call is None:
            calls = self.calls()
            if not calls:
                raise TraceFormatError("trace contains no collective calls")
            call = max(calls, key=lambda c: c.total_delay)
        arrivals = dict(zip(call.ranks, call.arrivals))
        by_dst: dict[int, list[dict]] = {}
        for s in self.message_spans(call.cell):
            args = s.get("args") or {}
            by_dst.setdefault(int(args["dst"]), []).append(s)
        for lst in by_dst.values():
            lst.sort(key=lambda s: (s["end"], s["start"]))
        exit_i = max(range(len(call.ranks)), key=lambda i: call.exits[i])
        rank = call.ranks[exit_i]
        t = call.exits[exit_i]
        first_arrival = min(call.arrivals)
        steps: list[dict] = []
        compute = link = 0.0
        # Each jump lands strictly earlier, so the walk visits at most one
        # message per step; the bound is a defensive backstop.
        for _ in range(len(self.spans) + len(call.ranks) + 1):
            arrived = arrivals[rank]
            best = None
            for m in reversed(by_dst.get(rank, ())):
                if m["end"] <= t and m["end"] > arrived and m["start"] < t:
                    best = m
                    break
            if best is None:
                compute += t - arrived
                steps.append({"kind": "compute", "rank": rank,
                              "start": arrived, "end": t})
                skew = arrived - first_arrival
                if skew > 0:
                    steps.append({"kind": "skew", "rank": rank,
                                  "start": first_arrival, "end": arrived})
                return CriticalPath(call=call, steps=tuple(steps),
                                    compute=compute, link=link, skew=skew)
            args = best.get("args") or {}
            compute += t - best["end"]
            steps.append({"kind": "compute", "rank": rank,
                          "start": best["end"], "end": t})
            link += best["end"] - best["start"]
            steps.append({"kind": "link", "src": int(args["src"]),
                          "dst": rank, "start": best["start"],
                          "end": best["end"],
                          "bytes": float(args.get("bytes", 0.0))})
            rank = int(args["src"])
            t = best["start"]
            if rank not in arrivals:
                raise TraceFormatError(
                    f"message sender rank {rank} has no arrival span"
                )
        raise TraceFormatError("critical-path walk did not converge")

    # -- deterministic payload -------------------------------------------- #

    def analysis_payload(self) -> dict:
        """Everything above as one deterministic JSON-serializable object.

        Derived purely from virtual-time spans and event counters, so two
        runs of the same configuration — serial, parallel, or cached —
        produce byte-identical payloads (host-time metrics are excluded;
        see :data:`HOST_TIME_METRICS`).
        """
        calls = self.calls()
        payload: dict[str, Any] = {
            "run_id": self.run_id,
            "dropped_spans": self.dropped,
            "dropped_links": self.dropped_links,
            "calls": [
                {
                    "cell": c.cell, "rep": c.rep, "name": c.name,
                    "ranks": len(c.ranks),
                    "last_delay": c.last_delay,
                    "total_delay": c.total_delay,
                    "arrival_spread": c.arrival_spread,
                }
                for c in calls
            ],
            "imbalance": self.imbalance() if calls else None,
            "phases": self.phase_breakdown(),
            "comm": self.comm_matrix().to_dict(),
            "links": {
                "records": len(self.links),
                "usage": self.link_usage(),
                "attribution": self.link_attribution(),
                "hotspots": self.link_hotspots(top=10),
            } if self.links else None,
            "critical_path": None,
            "metrics": {name: snap for name, snap in sorted(self.metrics.items())
                        if name not in HOST_TIME_METRICS},
        }
        if calls and self.message_spans():
            agg = {"compute": 0.0, "link": 0.0, "skew": 0.0, "total": 0.0}
            for c in calls:
                cp = self.critical_path(c)
                agg["compute"] += cp.compute
                agg["link"] += cp.link
                agg["skew"] += cp.skew
                agg["total"] += cp.total
            payload["critical_path"] = agg
        return payload


# --------------------------------------------------------------------------- #
# Payload diffing (the `repro-mpi diff-metrics` engine)
# --------------------------------------------------------------------------- #

def _numeric_leaves(obj: Any, prefix: str = "") -> dict[str, float]:
    out: dict[str, float] = {}
    if isinstance(obj, bool):
        return out
    if isinstance(obj, (int, float)):
        out[prefix] = float(obj)
    elif isinstance(obj, dict):
        for k in obj:
            key = f"{prefix}.{k}" if prefix else str(k)
            out.update(_numeric_leaves(obj[k], key))
    elif isinstance(obj, (list, tuple)):
        for i, v in enumerate(obj):
            out.update(_numeric_leaves(v, f"{prefix}[{i}]"))
    return out


def diff_payloads(baseline: dict, candidate: dict,
                  threshold: float = 0.05,
                  ignore: Iterable[str] = DEFAULT_DIFF_IGNORE) -> list[dict]:
    """Compare two analysis/metrics payloads; return thresholded drifts.

    Walks every numeric leaf (dotted path).  A leaf drifts when its
    relative change ``|new - old| / max(|old|, tiny)`` exceeds
    ``threshold``, or when it exists on only one side.  Paths starting
    with any ``ignore`` prefix are skipped (default: host-time
    measurements, which differ between any two runs).  Returns a list of
    ``{"path", "baseline", "candidate", "change", "direction"}`` sorted by
    path — empty means the payloads agree within the threshold.
    """
    ignore = tuple(ignore)
    old = _numeric_leaves(baseline)
    new = _numeric_leaves(candidate)
    drifts: list[dict] = []
    for path in sorted(set(old) | set(new)):
        if any(path == p or path.startswith(p + ".") or path.startswith(p + "[")
               for p in ignore):
            continue
        a, b = old.get(path), new.get(path)
        if a is None or b is None:
            drifts.append({"path": path, "baseline": a, "candidate": b,
                           "change": None,
                           "direction": "added" if a is None else "removed"})
            continue
        if a == b:
            continue
        denom = max(abs(a), 1e-300)
        change = (b - a) / denom
        if abs(change) > threshold:
            drifts.append({
                "path": path, "baseline": a, "candidate": b,
                "change": change,
                "direction": "increase" if change > 0 else "decrease",
            })
    return drifts


# --------------------------------------------------------------------------- #
# Tracer-based reconstruction (absorbed from repro.tracing.analysis)
# --------------------------------------------------------------------------- #
#
# These operate on a CollectiveTracer (event records from a traced
# application run) rather than on spans; they implement the same Section
# V-A procedure and live here so all trace analysis has one home.  The old
# module path, repro.tracing.analysis, re-exports them with a
# DeprecationWarning.

def _per_call_delays(
    tracer: "CollectiveTracer", collective: str, num_ranks: int
):
    """(num_calls, num_ranks) matrix of arrival delays vs. first arrival."""
    import numpy as np

    calls = tracer.calls(collective)
    if not calls:
        raise TraceFormatError(f"trace contains no {collective!r} calls")
    rows = []
    for sequence in sorted(calls):
        events = calls[sequence]
        by_rank = {ev.rank: ev for ev in events}
        if len(by_rank) != num_ranks:
            # Partial call (rank sampling active): skip incomplete records.
            continue
        arrivals = np.array([by_rank[r].arrival for r in range(num_ranks)])
        rows.append(arrivals - arrivals.min())
    if not rows:
        raise TraceFormatError(
            f"no complete {collective!r} calls covering all {num_ranks} ranks"
        )
    return np.stack(rows)


def average_delay_per_rank(
    tracer: "CollectiveTracer", collective: str, num_ranks: int
):
    """Fig. 1: mean arrival delay per rank across all traced calls."""
    return _per_call_delays(tracer, collective, num_ranks).mean(axis=0)


def max_observed_skew(
    tracer: "CollectiveTracer", collective: str, num_ranks: int
) -> float:
    """The highest per-call arrival spread seen in the trace.

    The paper uses this as the maximum process skew when generating the
    artificial patterns that accompany the traced scenario (Section V-B).
    """
    delays = _per_call_delays(tracer, collective, num_ranks)
    return float(delays.max(axis=1).max())


def pattern_from_trace(
    tracer: "CollectiveTracer",
    collective: str,
    num_ranks: int,
    name: str = "ft_scenario",
) -> "ArrivalPattern":
    """The replayable application scenario: per-rank average delays as skews."""
    from repro.patterns.generator import ArrivalPattern

    return ArrivalPattern(
        name, average_delay_per_rank(tracer, collective, num_ranks)
    )


__all__ = [
    "HOST_TIME_METRICS",
    "DEFAULT_DIFF_IGNORE",
    "CollectiveCall",
    "CriticalPath",
    "CommMatrix",
    "TraceAnalysis",
    "diff_payloads",
    "average_delay_per_rank",
    "max_observed_skew",
    "pattern_from_trace",
]
