"""Run-scoped metrics: counters, gauges, and fixed log2-bucket histograms.

One :class:`MetricsRegistry` lives on each enabled
:class:`~repro.obs.context.ObsContext`.  Layers increment metrics through
the registry; nothing is global, so concurrent runs never share counters.

Disabled mode
-------------
When no observability session is active, code paths obtain the module-level
null singletons (:data:`NULL_COUNTER`, :data:`NULL_GAUGE`,
:data:`NULL_HISTOGRAM`) through :class:`NullMetricsRegistry`.  Every method
on them is a no-op returning the singleton itself — no allocation, no
bookkeeping — so instrumentation costs one attribute check on hot paths.

Histograms
----------
Buckets are *fixed* powers of two: an observation ``v > 0`` lands in the
bucket whose key is ``floor(log2(v))``, clamped to ``[MIN_EXP, MAX_EXP]``
(covering ~1 ns .. ~100 days when observing seconds).  Fixed boundaries mean
histograms from different runs and different processes merge by plain
bucket-wise addition, and the export format is self-describing
(``"2^-20"`` style keys).  Zero and negative observations are counted
separately (they have no log2 bucket).  :meth:`Histogram.quantile`
estimates any quantile from the buckets with at most one bucket width of
error, so p50/p99 are first-class without retaining samples.

Labels
------
Every registry accessor takes an optional ``labels`` dict: each distinct
``(name, labels)`` pair is its own instrument, keyed in snapshots by the
Prometheus-style rendering ``name{key="value",...}`` (label keys sorted,
values escaped — see :func:`metric_key` / :func:`parse_metric_key`).
Because the label set is part of the snapshot key, labeled instruments
merge across processes exactly like unlabeled ones, and
:mod:`repro.obs.expose` can render any registry in Prometheus text
exposition format without extra bookkeeping.
"""

from __future__ import annotations

import math
import re
from typing import Iterator

#: Clamp range for histogram bucket exponents: 2**-30 ~ 1 ns, 2**23 ~ 97 days.
MIN_EXP = -30
MAX_EXP = 23

_LABEL_NAME_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")
#: One escaped label value: anything but raw ``"`` / ``\`` / newline.
_KEY_RE = re.compile(
    r'\A(?P<name>[^{]+)\{(?P<labels>[a-zA-Z_][a-zA-Z0-9_]*='
    r'"(?:[^"\\\n]|\\.)*"(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\.)*")*)\}\Z'
)
_LABEL_RE = re.compile(r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\\n]|\\.)*)"')


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text format rules."""
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def unescape_label_value(value: str) -> str:
    """Invert :func:`escape_label_value`."""
    out = []
    it = iter(value)
    for ch in it:
        if ch != "\\":
            out.append(ch)
            continue
        nxt = next(it, "")
        out.append({"n": "\n", '"': '"', "\\": "\\"}.get(nxt, "\\" + nxt))
    return "".join(out)


def metric_key(name: str, labels: dict | None = None) -> str:
    """The registry/snapshot key for ``(name, labels)``.

    Unlabeled metrics keep their bare name; labeled ones render as
    ``name{key="value",...}`` with keys sorted so the key is canonical —
    the same label set always produces the same instrument.
    """
    if not labels:
        return name
    for key in labels:
        if not _LABEL_NAME_RE.match(key):
            raise ValueError(f"invalid label name {key!r} on metric {name!r}")
    body = ",".join(f'{k}="{escape_label_value(str(labels[k]))}"'
                    for k in sorted(labels))
    return f"{name}{{{body}}}"


def parse_metric_key(key: str) -> tuple[str, dict[str, str]]:
    """Split a snapshot key back into ``(name, labels)``.

    A bare name parses to ``(name, {})``; malformed label syntax raises
    ``ValueError`` so exporters fail loudly instead of mislabeling.
    """
    if "{" not in key:
        return key, {}
    m = _KEY_RE.match(key)
    if m is None:
        raise ValueError(f"malformed metric key {key!r}")
    labels = {lm.group("key"): unescape_label_value(lm.group("value"))
              for lm in _LABEL_RE.finditer(m.group("labels"))}
    return m.group("name"), labels


def bucket_exp(value: float) -> int:
    """The fixed log2 bucket key for a positive observation."""
    # frexp(v) -> (m, e) with 0.5 <= m < 1 and v = m * 2**e, so
    # floor(log2(v)) == e - 1 exactly (no float-log rounding issues at
    # bucket boundaries: bucket_exp(2**k) == k bit-for-bit).
    e = math.frexp(value)[1] - 1
    if e < MIN_EXP:
        return MIN_EXP
    if e > MAX_EXP:
        return MAX_EXP
    return e


class Counter:
    """Monotonically increasing count (int or float increments)."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: int | float = 0

    def inc(self, n: int | float = 1) -> None:
        self.value += n

    def snapshot(self) -> dict:
        return {"kind": self.kind, "value": self.value}

    def merge_snapshot(self, snap: dict) -> None:
        """Fold another counter's :meth:`snapshot` into this one."""
        self.value += snap["value"]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """Last-write-wins value with a high-water mark."""

    __slots__ = ("name", "value", "peak")

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0
        self.peak: float = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.peak:
            self.peak = value

    def snapshot(self) -> dict:
        return {"kind": self.kind, "value": self.value, "peak": self.peak}

    def merge_snapshot(self, snap: dict) -> None:
        """Fold another gauge's :meth:`snapshot` into this one.

        Merged value is last-write-wins (the snapshot is "newer"); the peak
        is the maximum over both.
        """
        self.value = snap["value"]
        if snap["peak"] > self.peak:
            self.peak = snap["peak"]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gauge {self.name}={self.value} peak={self.peak}>"


class Histogram:
    """Fixed log2-bucket histogram of non-negative observations."""

    __slots__ = ("name", "count", "total", "min", "max", "zeros", "buckets")

    kind = "histogram"

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        #: Observations <= 0 (no log2 bucket exists for them).
        self.zeros = 0
        #: bucket exponent -> count; an observation v lands in
        #: floor(log2(v)) clamped to [MIN_EXP, MAX_EXP].
        self.buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= 0.0:
            self.zeros += 1
            return
        e = bucket_exp(value)
        self.buckets[e] = self.buckets.get(e, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float | None:
        """Estimate the ``q``-quantile from the fixed log2 buckets.

        The target rank is located in the exact per-bucket counts, then
        linearly interpolated inside its bucket ``[2^e, 2^(e+1))`` and
        clamped to the observed ``[min, max]`` — so the estimate is off by
        at most one bucket width (the true order statistic lives in the
        same bucket).  Ranks that fall among the ``zeros`` (observations
        <= 0) return ``0.0``.  ``q=0`` / ``q=1`` return the tracked exact
        ``min`` / ``max``.  Returns ``None`` for an empty histogram;
        raises ``ValueError`` for ``q`` outside ``[0, 1]``.  Values beyond
        the clamp range land in the edge buckets, where interior ranks may
        exceed the one-bucket bound (the min/max clamp still bounds the
        estimate).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile q must be in [0, 1], got {q!r}")
        if self.count == 0:
            return None
        # The extremes are tracked exactly — no bucket math needed.
        if q == 0.0:
            return float(self.min)
        if q == 1.0:
            return float(self.max)
        # 1-indexed fractional rank, numpy-style linear interpolation.
        target = q * (self.count - 1) + 1.0
        if target <= self.zeros:
            return 0.0
        cum = float(self.zeros)
        estimate = float(self.max)
        for e in sorted(self.buckets):
            n = self.buckets[e]
            if target <= cum + n:
                lo, hi = 2.0 ** e, 2.0 ** (e + 1)
                estimate = lo + (target - cum) / n * (hi - lo)
                break
            cum += n
        if estimate > self.max:
            estimate = float(self.max)
        if self.min > 0 and estimate < self.min:
            estimate = float(self.min)
        return estimate

    def snapshot(self) -> dict:
        return {
            "kind": self.kind,
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "zeros": self.zeros,
            "buckets": {f"2^{e}": n for e, n in sorted(self.buckets.items())},
        }

    def merge_snapshot(self, snap: dict) -> None:
        """Fold another histogram's :meth:`snapshot` into this one.

        Fixed bucket boundaries make this plain bucket-wise addition — the
        property that lets worker-process histograms merge losslessly into
        the parent session's registry.
        """
        self.count += snap["count"]
        self.total += snap["sum"]
        if snap["min"] is not None and snap["min"] < self.min:
            self.min = snap["min"]
        if snap["max"] is not None and snap["max"] > self.max:
            self.max = snap["max"]
        self.zeros += snap["zeros"]
        for key, n in snap["buckets"].items():
            e = int(key[2:])  # "2^-20" -> -20
            self.buckets[e] = self.buckets.get(e, 0) + n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Histogram {self.name} n={self.count} mean={self.mean:.3g}>"


class MetricsRegistry:
    """Name-keyed store of metrics for one observability session.

    ``counter``/``gauge``/``histogram`` create on first use and return the
    existing instrument afterwards; asking for an existing name with a
    different kind raises ``ValueError`` (it is always a bug).  An optional
    ``labels`` dict makes each distinct label set its own instrument,
    keyed as ``name{key="value",...}`` (see :func:`metric_key`).
    """

    __slots__ = ("_metrics",)

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, cls, name: str, labels: dict | None):
        if labels:
            name = metric_key(name, labels)
        m = self._metrics.get(name)
        if m is None:
            m = cls(name)
            self._metrics[name] = m
        elif type(m) is not cls:
            raise ValueError(
                f"metric {name!r} already registered as {m.kind}, "
                f"requested {cls.kind}"
            )
        return m

    def counter(self, name: str, labels: dict | None = None) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, labels: dict | None = None) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, labels: dict | None = None) -> Histogram:
        return self._get(Histogram, name, labels)

    def get(self, name: str,
            labels: dict | None = None) -> Counter | Gauge | Histogram | None:
        """The instrument registered under ``(name, labels)``, or None."""
        if labels:
            name = metric_key(name, labels)
        return self._metrics.get(name)

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[str]:
        return iter(self._metrics)

    def snapshot(self) -> dict[str, dict]:
        """All instruments as plain JSON-serializable dicts, sorted by name."""
        return {name: self._metrics[name].snapshot()
                for name in sorted(self._metrics)}

    def merge_snapshot(self, snapshot: dict[str, dict]) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker process) into this
        registry, creating instruments as needed."""
        by_kind = {"counter": self.counter, "gauge": self.gauge,
                   "histogram": self.histogram}
        for name in sorted(snapshot):
            snap = snapshot[name]
            try:
                get = by_kind[snap["kind"]]
            except KeyError:
                raise ValueError(
                    f"metric {name!r} has unknown kind {snap.get('kind')!r}"
                ) from None
            get(name).merge_snapshot(snap)


# --------------------------------------------------------------------------- #
# Disabled-mode stubs: module-level singletons, every method a no-op.
# --------------------------------------------------------------------------- #

class _NullCounter:
    __slots__ = ()
    kind = "counter"
    value = 0

    def inc(self, n: int | float = 1) -> None:
        pass

    def snapshot(self) -> dict:  # pragma: no cover - never exported
        return {}


class _NullGauge:
    __slots__ = ()
    kind = "gauge"
    value = 0.0
    peak = 0.0

    def set(self, value: float) -> None:
        pass

    def snapshot(self) -> dict:  # pragma: no cover - never exported
        return {}


class _NullHistogram:
    __slots__ = ()
    kind = "histogram"
    count = 0
    total = 0.0
    mean = 0.0

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> None:
        return None

    def snapshot(self) -> dict:  # pragma: no cover - never exported
        return {}


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


class NullMetricsRegistry:
    """Registry stub handed out by the disabled context: always returns the
    shared null instruments, never allocates, never records."""

    __slots__ = ()

    def counter(self, name: str, labels: dict | None = None) -> _NullCounter:
        return NULL_COUNTER

    def gauge(self, name: str, labels: dict | None = None) -> _NullGauge:
        return NULL_GAUGE

    def histogram(self, name: str, labels: dict | None = None) -> _NullHistogram:
        return NULL_HISTOGRAM

    def get(self, name: str, labels: dict | None = None) -> None:
        return None

    def __len__(self) -> int:
        return 0

    def __iter__(self) -> Iterator[str]:
        return iter(())

    def snapshot(self) -> dict[str, dict]:
        return {}


NULL_METRICS = NullMetricsRegistry()


__all__ = [
    "MIN_EXP",
    "MAX_EXP",
    "bucket_exp",
    "metric_key",
    "parse_metric_key",
    "escape_label_value",
    "unescape_label_value",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "NULL_METRICS",
    "NullMetricsRegistry",
]
