"""Run-scoped metrics: counters, gauges, and fixed log2-bucket histograms.

One :class:`MetricsRegistry` lives on each enabled
:class:`~repro.obs.context.ObsContext`.  Layers increment metrics through
the registry; nothing is global, so concurrent runs never share counters.

Disabled mode
-------------
When no observability session is active, code paths obtain the module-level
null singletons (:data:`NULL_COUNTER`, :data:`NULL_GAUGE`,
:data:`NULL_HISTOGRAM`) through :class:`NullMetricsRegistry`.  Every method
on them is a no-op returning the singleton itself — no allocation, no
bookkeeping — so instrumentation costs one attribute check on hot paths.

Histograms
----------
Buckets are *fixed* powers of two: an observation ``v > 0`` lands in the
bucket whose key is ``floor(log2(v))``, clamped to ``[MIN_EXP, MAX_EXP]``
(covering ~1 ns .. ~100 days when observing seconds).  Fixed boundaries mean
histograms from different runs and different processes merge by plain
bucket-wise addition, and the export format is self-describing
(``"2^-20"`` style keys).  Zero and negative observations are counted
separately (they have no log2 bucket).
"""

from __future__ import annotations

import math
from typing import Iterator

#: Clamp range for histogram bucket exponents: 2**-30 ~ 1 ns, 2**23 ~ 97 days.
MIN_EXP = -30
MAX_EXP = 23


def bucket_exp(value: float) -> int:
    """The fixed log2 bucket key for a positive observation."""
    # frexp(v) -> (m, e) with 0.5 <= m < 1 and v = m * 2**e, so
    # floor(log2(v)) == e - 1 exactly (no float-log rounding issues at
    # bucket boundaries: bucket_exp(2**k) == k bit-for-bit).
    e = math.frexp(value)[1] - 1
    if e < MIN_EXP:
        return MIN_EXP
    if e > MAX_EXP:
        return MAX_EXP
    return e


class Counter:
    """Monotonically increasing count (int or float increments)."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: int | float = 0

    def inc(self, n: int | float = 1) -> None:
        self.value += n

    def snapshot(self) -> dict:
        return {"kind": self.kind, "value": self.value}

    def merge_snapshot(self, snap: dict) -> None:
        """Fold another counter's :meth:`snapshot` into this one."""
        self.value += snap["value"]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """Last-write-wins value with a high-water mark."""

    __slots__ = ("name", "value", "peak")

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0
        self.peak: float = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.peak:
            self.peak = value

    def snapshot(self) -> dict:
        return {"kind": self.kind, "value": self.value, "peak": self.peak}

    def merge_snapshot(self, snap: dict) -> None:
        """Fold another gauge's :meth:`snapshot` into this one.

        Merged value is last-write-wins (the snapshot is "newer"); the peak
        is the maximum over both.
        """
        self.value = snap["value"]
        if snap["peak"] > self.peak:
            self.peak = snap["peak"]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gauge {self.name}={self.value} peak={self.peak}>"


class Histogram:
    """Fixed log2-bucket histogram of non-negative observations."""

    __slots__ = ("name", "count", "total", "min", "max", "zeros", "buckets")

    kind = "histogram"

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        #: Observations <= 0 (no log2 bucket exists for them).
        self.zeros = 0
        #: bucket exponent -> count; an observation v lands in
        #: floor(log2(v)) clamped to [MIN_EXP, MAX_EXP].
        self.buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= 0.0:
            self.zeros += 1
            return
        e = bucket_exp(value)
        self.buckets[e] = self.buckets.get(e, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {
            "kind": self.kind,
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "zeros": self.zeros,
            "buckets": {f"2^{e}": n for e, n in sorted(self.buckets.items())},
        }

    def merge_snapshot(self, snap: dict) -> None:
        """Fold another histogram's :meth:`snapshot` into this one.

        Fixed bucket boundaries make this plain bucket-wise addition — the
        property that lets worker-process histograms merge losslessly into
        the parent session's registry.
        """
        self.count += snap["count"]
        self.total += snap["sum"]
        if snap["min"] is not None and snap["min"] < self.min:
            self.min = snap["min"]
        if snap["max"] is not None and snap["max"] > self.max:
            self.max = snap["max"]
        self.zeros += snap["zeros"]
        for key, n in snap["buckets"].items():
            e = int(key[2:])  # "2^-20" -> -20
            self.buckets[e] = self.buckets.get(e, 0) + n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Histogram {self.name} n={self.count} mean={self.mean:.3g}>"


class MetricsRegistry:
    """Name-keyed store of metrics for one observability session.

    ``counter``/``gauge``/``histogram`` create on first use and return the
    existing instrument afterwards; asking for an existing name with a
    different kind raises ``ValueError`` (it is always a bug).
    """

    __slots__ = ("_metrics",)

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, cls, name: str):
        m = self._metrics.get(name)
        if m is None:
            m = cls(name)
            self._metrics[name] = m
        elif type(m) is not cls:
            raise ValueError(
                f"metric {name!r} already registered as {m.kind}, "
                f"requested {cls.kind}"
            )
        return m

    def counter(self, name: str) -> Counter:
        return self._get(Counter, name)

    def gauge(self, name: str) -> Gauge:
        return self._get(Gauge, name)

    def histogram(self, name: str) -> Histogram:
        return self._get(Histogram, name)

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        """The instrument registered under ``name``, or None."""
        return self._metrics.get(name)

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[str]:
        return iter(self._metrics)

    def snapshot(self) -> dict[str, dict]:
        """All instruments as plain JSON-serializable dicts, sorted by name."""
        return {name: self._metrics[name].snapshot()
                for name in sorted(self._metrics)}

    def merge_snapshot(self, snapshot: dict[str, dict]) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker process) into this
        registry, creating instruments as needed."""
        by_kind = {"counter": self.counter, "gauge": self.gauge,
                   "histogram": self.histogram}
        for name in sorted(snapshot):
            snap = snapshot[name]
            try:
                get = by_kind[snap["kind"]]
            except KeyError:
                raise ValueError(
                    f"metric {name!r} has unknown kind {snap.get('kind')!r}"
                ) from None
            get(name).merge_snapshot(snap)


# --------------------------------------------------------------------------- #
# Disabled-mode stubs: module-level singletons, every method a no-op.
# --------------------------------------------------------------------------- #

class _NullCounter:
    __slots__ = ()
    kind = "counter"
    value = 0

    def inc(self, n: int | float = 1) -> None:
        pass

    def snapshot(self) -> dict:  # pragma: no cover - never exported
        return {}


class _NullGauge:
    __slots__ = ()
    kind = "gauge"
    value = 0.0
    peak = 0.0

    def set(self, value: float) -> None:
        pass

    def snapshot(self) -> dict:  # pragma: no cover - never exported
        return {}


class _NullHistogram:
    __slots__ = ()
    kind = "histogram"
    count = 0
    total = 0.0
    mean = 0.0

    def observe(self, value: float) -> None:
        pass

    def snapshot(self) -> dict:  # pragma: no cover - never exported
        return {}


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


class NullMetricsRegistry:
    """Registry stub handed out by the disabled context: always returns the
    shared null instruments, never allocates, never records."""

    __slots__ = ()

    def counter(self, name: str) -> _NullCounter:
        return NULL_COUNTER

    def gauge(self, name: str) -> _NullGauge:
        return NULL_GAUGE

    def histogram(self, name: str) -> _NullHistogram:
        return NULL_HISTOGRAM

    def get(self, name: str) -> None:
        return None

    def __len__(self) -> int:
        return 0

    def __iter__(self) -> Iterator[str]:
        return iter(())

    def snapshot(self) -> dict[str, dict]:
        return {}


NULL_METRICS = NullMetricsRegistry()


__all__ = [
    "MIN_EXP",
    "MAX_EXP",
    "bucket_exp",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "NULL_METRICS",
    "NullMetricsRegistry",
]
