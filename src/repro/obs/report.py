"""Self-contained HTML reports from a trace: one file, no external assets.

:func:`render_report` turns a :class:`~repro.obs.analysis.TraceAnalysis`
into a standalone HTML document — inline CSS, inline SVG, zero external
requests — so a report uploaded as a CI artifact or mailed around renders
anywhere.  Sections:

* run header (run id, span accounting) with a loud banner when the span
  or fabric-link ring dropped records (the trace below is then
  incomplete);
* per-call delay table: ``d_hat`` / ``d_star`` / arrival spread per
  reconstructed collective call, plus the imbalance summary;
* virtual-time timeline (rank tracks + merged-cell containers) rendered
  with :func:`repro.reporting.svg.svg_timeline`;
* comm-volume heatmap (bytes per src -> dst) when the trace carries
  per-message spans;
* fabric links: per-link utilization/wait table, busy-fraction heatmap
  over time (the weather map), and per-collective contention attribution
  when the trace carries link records (``record_links=True`` sessions);
* critical-path attribution (compute / link / skew partition of
  ``d_star``) for the longest call;
* algorithm phase breakdown and the metric tables.

``repro-mpi report <trace> -o report.html`` is the CLI entry point.
"""

from __future__ import annotations

from html import escape
from pathlib import Path

from repro.errors import TraceFormatError
from repro.obs.analysis import HOST_TIME_METRICS, TraceAnalysis
from repro.reporting.svg import svg_heatmap, svg_timeline
from repro.utils.units import format_time

_CSS = """
body{font:14px/1.5 -apple-system,'Segoe UI',sans-serif;color:#1a1a1a;
     max-width:1020px;margin:2em auto;padding:0 1em}
h1{font-size:1.4em;border-bottom:2px solid #204a87;padding-bottom:.3em}
h2{font-size:1.1em;margin-top:2em;color:#204a87}
table{border-collapse:collapse;margin:.8em 0;font-size:13px}
th,td{border:1px solid #ccc;padding:3px 9px;text-align:right;
      font-variant-numeric:tabular-nums}
th{background:#f0f3f7;text-align:center}
td.l,th.l{text-align:left}
.meta{color:#555;font-size:13px}
.warn{background:#fbe3e4;border:1px solid #c0392b;color:#8a1f11;
      padding:.6em 1em;border-radius:4px;margin:1em 0;font-weight:600}
.ok{color:#2d7d46}
figure{margin:1em 0;overflow-x:auto}
"""


def _table(headers: list[str], rows: list[list[str]],
           left_cols: int = 1) -> str:
    """A small HTML table; the first ``left_cols`` columns left-align."""
    def cell(tag: str, i: int, text: str) -> str:
        cls = ' class="l"' if i < left_cols else ""
        return f"<{tag}{cls}>{escape(text)}</{tag}>"

    head = "".join(cell("th", i, h) for i, h in enumerate(headers))
    body = "".join(
        "<tr>" + "".join(cell("td", i, c) for i, c in enumerate(row)) + "</tr>"
        for row in rows
    )
    return f"<table><tr>{head}</tr>{body}</table>"


def _timeline_section(analysis: TraceAnalysis) -> str:
    intervals: dict[str, list[tuple[float, float, str]]] = {}
    for s in analysis.spans:
        track = s["track"]
        if track.startswith(("rank ", "msgs ")) or track == "cells":
            intervals.setdefault(track, []).append(
                (s["start"], s["end"], s["name"])
            )
    if not intervals:
        return "<p class='meta'>No virtual-time spans in this trace.</p>"

    def order(track: str) -> tuple:
        kind, _, num = track.partition(" ")
        prio = {"cells": 0, "rank": 1, "msgs": 2}.get(kind, 3)
        return (prio, int(num) if num.isdigit() else 0)

    tracks = [(t, intervals[t]) for t in sorted(intervals, key=order)]
    return f"<figure>{svg_timeline(tracks)}</figure>"


def _comm_section(analysis: TraceAnalysis) -> str:
    matrix = analysis.comm_matrix()
    if not matrix.ranks:
        return ("<p class='meta'>No per-message spans — record the trace "
                "with message recording on (<code>repro-mpi profile</code> "
                "does) to get comm-volume matrices.</p>")
    labels = [str(r) for r in matrix.ranks]
    values = [[matrix.bytes_sent.get(s, {}).get(d, 0.0) for d in matrix.ranks]
              for s in matrix.ranks]
    figure = svg_heatmap(values, labels, labels,
                         title="bytes delivered, src (rows) -> dst (cols)")
    return (
        f"<p class='meta'>{matrix.total_messages} messages, "
        f"{matrix.total_bytes:g} bytes delivered.</p>"
        f"<figure>{figure}</figure>"
    )


#: Row cap for the link heatmap/tables — a 16k-rank trace has tens of
#: thousands of links; the report shows the hottest ones and says so.
_MAX_LINK_ROWS = 32


def _links_section(analysis: TraceAnalysis) -> str:
    usage = analysis.link_usage()
    if not usage:
        return ("<p class='meta'>No fabric link records — record the trace "
                "with link recording on (<code>repro-mpi profile --links"
                "</code>) to get per-link utilization and contention "
                "attribution.</p>")
    hot = analysis.link_hotspots(top=_MAX_LINK_ROWS)
    out = (
        f"<p class='meta'>{len(usage)} active links, "
        f"{sum(u['messages'] for u in usage)} port claims; hotspot: "
        f"<code>{escape(hot[0]['link'])}</code> "
        f"({format_time(hot[0]['wait'])} contention wait).</p>"
    )
    out += _table(
        ["link", "busy", "wait", "bytes", "messages"],
        [[u["link"], format_time(u["busy"]), format_time(u["wait"]),
          f"{u['bytes']:g}", str(u["messages"])] for u in hot],
    )
    if len(usage) > _MAX_LINK_ROWS:
        out += (f"<p class='meta'>… {len(usage) - _MAX_LINK_ROWS} cooler "
                "links omitted.</p>")
    timeline = analysis.link_timeline(bins=24)
    keep = {(u["port"], u["cls"], u["direction"]) for u in hot}
    rows = [r for r in timeline["rows"]
            if (r["port"], r["cls"], r["direction"]) in keep]
    values = [[min(b, 1.0) for b in r["busy"]] for r in rows]
    figure = svg_heatmap(
        values, [r["link"] for r in rows],
        [str(i) for i in range(timeline["bins"])],
        title="busy fraction per link (rows) over time bins (cols)",
    )
    out += f"<figure>{figure}</figure>"
    attr = [r for r in analysis.link_attribution()
            if (r["port"], r["cls"], r["direction"]) in keep
            and r["wait"] > 0.0][:_MAX_LINK_ROWS]
    if attr:
        out += "<p class='meta'>Contention attribution (who made it hot):</p>"
        out += _table(
            ["link", "collective/algorithm", "wait", "messages"],
            [[r["link"], r["activity"], format_time(r["wait"]),
              str(r["messages"])] for r in attr],
            left_cols=2,
        )
    return out


def _critical_path_section(analysis: TraceAnalysis) -> str:
    if not analysis.calls() or not analysis.message_spans():
        return ("<p class='meta'>Critical-path extraction needs per-message "
                "spans and at least one collective call.</p>")
    cp = analysis.critical_path()
    total = cp.total or 1.0
    rows = [
        ["compute", format_time(cp.compute), f"{cp.compute / total:.1%}"],
        ["link", format_time(cp.link), f"{cp.link / total:.1%}"],
        ["skew", format_time(cp.skew), f"{cp.skew / total:.1%}"],
        ["total (d*)", format_time(cp.total), "100.0%"],
    ]
    call = cp.call
    where = f"cell {call.cell}, rep {call.rep}" if call.cell is not None \
        else f"rep {call.rep}"
    return (
        f"<p class='meta'>Longest call: <code>{escape(call.name)}</code> "
        f"({escape(where)}), {len(cp.steps)} path steps.</p>"
        + _table(["attribution", "time", "share"], rows)
    )


def _metrics_section(analysis: TraceAnalysis) -> str:
    if not analysis.metrics:
        return "<p class='meta'>No metrics in this trace.</p>"
    simple: list[list[str]] = []
    histos: list[list[str]] = []
    for name in sorted(analysis.metrics):
        snap = analysis.metrics[name]
        kind = snap.get("kind")
        note = " (host time)" if name in HOST_TIME_METRICS else ""
        if kind == "histogram":
            histos.append([
                name + note, str(snap["count"]), f"{snap['mean']:.3g}",
                "-" if snap["min"] is None else f"{snap['min']:.3g}",
                "-" if snap["max"] is None else f"{snap['max']:.3g}",
            ])
        elif kind == "gauge":
            simple.append([name + note, "gauge",
                           f"{snap['value']:g} (peak {snap['peak']:g})"])
        else:
            simple.append([name + note, str(kind), f"{snap.get('value', 0):g}"])
    out = ""
    if simple:
        out += _table(["metric", "kind", "value"], simple, left_cols=2)
    if histos:
        out += _table(["histogram", "count", "mean", "min", "max"], histos)
    return out


def render_report(analysis: TraceAnalysis, title: str = "") -> str:
    """The complete standalone HTML document for one analyzed trace."""
    title = title or f"trace report — {analysis.run_id or 'unnamed run'}"
    parts: list[str] = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{escape(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{escape(title)}</h1>",
        f"<p class='meta'>run id: <code>{escape(analysis.run_id or '-')}"
        f"</code> &middot; {len(analysis.spans)} virtual spans</p>",
    ]
    if analysis.dropped > 0 or analysis.dropped_links > 0:
        what = []
        if analysis.dropped > 0:
            what.append(f"{analysis.dropped} span(s)")
        if analysis.dropped_links > 0:
            what.append(f"{analysis.dropped_links} link record(s)")
        parts.append(
            f"<div class='warn'>&#9888; {' and '.join(what)} were "
            "dropped from the recording ring buffer — this trace and every "
            "number below are incomplete. Re-record with a larger "
            "capacity.</div>"
        )
    calls = analysis.calls()
    parts.append("<h2>Collective calls</h2>")
    if calls:
        rows = [
            [c.name,
             "-" if c.cell is None else str(c.cell),
             str(c.rep), str(len(c.ranks)),
             format_time(c.last_delay), format_time(c.total_delay),
             format_time(c.arrival_spread)]
            for c in calls
        ]
        parts.append(_table(
            ["call", "cell", "rep", "ranks",
             "d̂ (last delay)", "d* (total delay)",
             "ω (arrival spread)"],
            rows,
        ))
        imb = analysis.imbalance()
        parts.append(
            "<p class='meta'>imbalance: mean ω/d̂ = "
            f"{imb['spread_over_last_delay']['mean']:.3f}, "
            f"max = {imb['spread_over_last_delay']['max']:.3f}; "
            f"mean ω = {format_time(imb['mean_arrival_spread'])}</p>"
        )
    else:
        parts.append("<p class='meta'>No collective calls in this trace.</p>")
    parts.append("<h2>Timeline</h2>")
    parts.append(_timeline_section(analysis))
    parts.append("<h2>Communication volume</h2>")
    parts.append(_comm_section(analysis))
    parts.append("<h2>Fabric links</h2>")
    parts.append(_links_section(analysis))
    parts.append("<h2>Critical path</h2>")
    parts.append(_critical_path_section(analysis))
    phases = analysis.phase_breakdown()
    parts.append("<h2>Phase breakdown</h2>")
    if phases:
        parts.append(_table(
            ["phase", "spans", "rank-seconds"],
            [[name, str(agg["count"]), format_time(agg["seconds"])]
             for name, agg in phases.items()],
        ))
    else:
        parts.append("<p class='meta'>No rank-track spans.</p>")
    parts.append("<h2>Metrics</h2>")
    parts.append(_metrics_section(analysis))
    parts.append("</body></html>")
    return "\n".join(parts)


def write_report(path: str | Path, source, title: str = "") -> Path:
    """Render ``source`` to ``path`` and return it.

    ``source`` may be a :class:`TraceAnalysis`, a live
    :class:`~repro.obs.context.ObsContext`, or a trace file path
    (JSONL stream or Perfetto JSON).
    """
    if isinstance(source, TraceAnalysis):
        analysis = source
    elif isinstance(source, (str, Path)):
        analysis = TraceAnalysis.from_file(source)
    elif hasattr(source, "run_id") and hasattr(source, "metrics"):
        analysis = TraceAnalysis.from_context(source)
    else:
        raise TraceFormatError(
            f"cannot analyze {type(source).__name__}: expected a "
            "TraceAnalysis, ObsContext, or trace file path"
        )
    path = Path(path)
    path.write_text(render_report(analysis, title=title))
    return path


__all__ = ["render_report", "write_report"]
