"""repro.obs — the unified, run-scoped observability layer.

Every layer of the stack plugs into one :class:`ObsContext` per run:

* **metrics** — counters, gauges, and fixed log2-bucket histograms
  (:mod:`repro.obs.metrics`) absorbing the engine's hot-path counters, the
  executor/result-cache hit rates, and per-collective call counts;
* **spans** — virtual-time intervals on one track per simulated rank
  (arrival patterns become literally visible) plus wall-clock intervals
  for harness stages, in a bounded ring buffer (:mod:`repro.obs.spans`);
* **fabric links** — bounded per-port busy-interval records from both
  engines' FIFO port chains, the raw material for per-link utilization,
  contention attribution, and the network weather map
  (:mod:`repro.obs.linkstats`);
* **exporters** — Chrome/Perfetto ``trace_event`` JSON, a JSONL event
  stream, and a metrics snapshot, all stamped with a deterministic run ID
  (:mod:`repro.obs.export`, :mod:`repro.obs.runid`);
* **live exposition** — Prometheus text rendering of any registry
  (labels included), interval windows with rolling rates, and a plain
  HTTP scrape endpoint for long-lived services
  (:mod:`repro.obs.expose`);
* **cross-process capture** — per-cell telemetry payloads that pool
  workers and the result cache ship back to the parent session, merged
  deterministically so ``--jobs N`` traces equal serial ones
  (:mod:`repro.obs.collect`);
* **analysis** — the paper's metrics (last delay ``d_hat``, arrival
  spread/imbalance, comm-volume matrices, critical paths) computed
  straight from a context or an exported trace file
  (:mod:`repro.obs.analysis`), plus HTML reporting
  (:mod:`repro.obs.report`).

Usage::

    from repro import obs

    with obs.session(meta={"command": "profile"}) as octx:
        ...  # run simulations; layers record through obs.current()
        obs.export_perfetto("trace.json", octx)

When no session is open, :func:`current` returns the shared disabled
:data:`NULL_CONTEXT` whose methods are allocation-free no-ops — and
instrumentation never changes simulated results either way (pinned by the
parity tests).
"""

from repro.obs.context import (
    NULL_CONTEXT,
    NullObsContext,
    ObsContext,
    absorb_engine_stats,
    current,
    disable_process_engine_aggregation,
    enable_process_engine_aggregation,
    session,
)
from repro.obs.analysis import (
    CollectiveCall,
    CommMatrix,
    CriticalPath,
    HOST_TIME_METRICS,
    TraceAnalysis,
    diff_payloads,
)
from repro.obs.collect import (
    CellTelemetry,
    capture_telemetry,
    merge_telemetry,
)
from repro.obs.expose import (
    MetricsHTTPServer,
    MetricsWindow,
    PROMETHEUS_CONTENT_TYPE,
    WindowedSnapshotter,
    parse_prometheus,
    render_prometheus,
    sanitize_metric_name,
)
from repro.obs.export import (
    dropped_span_warning,
    export_jsonl,
    export_metrics,
    export_perfetto,
    load_perfetto,
    metrics_payload,
    rank_tracks,
    read_jsonl,
    trace_events,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_METRICS,
    metric_key,
    parse_metric_key,
)
from repro.obs.linkstats import (
    CLASS_NAMES,
    DEFAULT_LINK_CAPACITY,
    DIRECTION_NAMES,
    FIELDS as LINK_FIELDS,
    LinkStatsRecorder,
    RX,
    TX,
    link_name,
    port_name,
)
from repro.obs.runid import RUN_ID_LEN, make_run_id
from repro.obs.spans import (
    DEFAULT_CAPACITY,
    Span,
    SpanRecorder,
    VIRTUAL,
    WALL,
    msg_track,
    rank_track,
)

__all__ = [
    # context
    "ObsContext",
    "NullObsContext",
    "NULL_CONTEXT",
    "current",
    "session",
    "absorb_engine_stats",
    "enable_process_engine_aggregation",
    "disable_process_engine_aggregation",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "NULL_METRICS",
    "metric_key",
    "parse_metric_key",
    # exposition
    "PROMETHEUS_CONTENT_TYPE",
    "render_prometheus",
    "parse_prometheus",
    "sanitize_metric_name",
    "MetricsWindow",
    "WindowedSnapshotter",
    "MetricsHTTPServer",
    # spans
    "Span",
    "SpanRecorder",
    "VIRTUAL",
    "WALL",
    "DEFAULT_CAPACITY",
    "rank_track",
    "msg_track",
    # fabric links
    "LinkStatsRecorder",
    "DEFAULT_LINK_CAPACITY",
    "CLASS_NAMES",
    "DIRECTION_NAMES",
    "TX",
    "RX",
    "LINK_FIELDS",
    "port_name",
    "link_name",
    # run ids
    "RUN_ID_LEN",
    "make_run_id",
    # export
    "trace_events",
    "export_perfetto",
    "export_metrics",
    "metrics_payload",
    "export_jsonl",
    "read_jsonl",
    "load_perfetto",
    "rank_tracks",
    "dropped_span_warning",
    # cross-process capture
    "CellTelemetry",
    "capture_telemetry",
    "merge_telemetry",
    # analysis
    "TraceAnalysis",
    "CollectiveCall",
    "CommMatrix",
    "CriticalPath",
    "HOST_TIME_METRICS",
    "diff_payloads",
]
