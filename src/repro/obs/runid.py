"""Deterministic run identifiers.

A run ID names one observed execution — a CLI invocation, a profile cell, a
campaign — and stamps every exported artifact (Perfetto trace, JSONL event
stream, metrics snapshot) so artifacts from the same run can be correlated
and artifacts from *re-runs of the same configuration* compare equal.

IDs are therefore content-derived, not random: the SHA-256 of the canonical
JSON of the run's describing payload (command, arguments, machine, seed —
whatever the caller considers identity-defining), truncated to 12 hex
characters.  The same configuration always maps to the same ID; any change
to it yields a different one.  Wall-clock time deliberately plays no part.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

#: Length (hex characters) of a run ID.  12 hex chars = 48 bits — ample for
#: distinguishing runs while staying readable in filenames and logs.
RUN_ID_LEN = 12


def make_run_id(payload: Any, prefix: str = "") -> str:
    """Derive the deterministic run ID for ``payload``.

    ``payload`` must be JSON-serializable (it is canonicalized with sorted
    keys and compact separators, so dict ordering does not matter).  An
    optional ``prefix`` is prepended with a dash for human readability, e.g.
    ``profile-3fa9c1d2e4b5``.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"),
                           default=str)
    digest = hashlib.sha256(canonical.encode()).hexdigest()[:RUN_ID_LEN]
    return f"{prefix}-{digest}" if prefix else digest


__all__ = ["RUN_ID_LEN", "make_run_id"]
