"""The persistent tuning database: sweeps, cells, rules, and provenance.

A :class:`TuningStore` is an SQLite file (WAL mode, stdlib :mod:`sqlite3`)
holding everything a tuning campaign learns — raw per-cell
:class:`~repro.bench.results.BenchResult` rows, whole
:class:`~repro.bench.results.SweepResult` grids, and the strategy-built
selection rules distilled from them — plus provenance (observability run
ID, model version, harness-parameter hash, ``git describe``) for every row.

Everything data-bearing is **content-addressed**: a sweep or result row is
keyed by the SHA-256 of its canonical JSON, so ingesting the same data
twice changes nothing (idempotent ingest is what lets long campaigns,
re-runs, and multiple workers all sink into one store).

Writers: :class:`~repro.bench.executor.CellExecutor` (``store=`` sink for
raw cells), :class:`~repro.bench.campaign.TuningCampaign`
(``store=`` ingests sweeps + rules), and
:meth:`~repro.selection.table.SelectionTable.to_store`.  Readers:
:meth:`SelectionTable.from_store` and the
:class:`~repro.service.SelectionService`, which warm-starts its query
tables from a store and hot-reloads when the file changes.

The store is safe for concurrent use from multiple threads (one internal
lock serializes statements) and multiple processes (WAL readers never
block the writer).
"""

from __future__ import annotations

import hashlib
import json
import math
import sqlite3
import subprocess
import threading
from datetime import datetime, timezone
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from repro._version import __version__
from repro.errors import ConfigurationError, StoreError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.bench.campaign import CampaignResult
    from repro.bench.executor import CellSpec
    from repro.bench.results import BenchResult, SweepResult
    from repro.selection.table import SelectionTable

#: Strategy name the per-pattern best picks are stored under.  These are
#: not produced by a :class:`~repro.selection.strategies.SelectionStrategy`
#: — they are the oracle row winners a pattern-conditioned query wants.
PATTERN_BEST = "pattern_best"

#: Harness keys of a ``CellSpec.to_dict()`` payload — the part that
#: identifies *where* a result was measured rather than *what* was measured.
_HARNESS_KEYS = ("platform", "network", "nrep", "seed", "clock_mode",
                 "noise_profile", "count", "harmonize_slack", "machine_name")


def canonical_json(obj: object) -> str:
    """Deterministic JSON encoding used for every content hash.

    Strict JSON only: Python's encoder would happily emit non-standard
    ``NaN``/``Infinity`` tokens, which other JSON parsers reject and which
    make a mockery of content addressing (NaN != NaN, yet the rows would
    hash equal).  A payload carrying a non-finite float raises
    :class:`ConfigurationError` naming the offending key path.
    """
    try:
        return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                          allow_nan=False)
    except ValueError as exc:
        try:
            path = _non_finite_path(obj)
        except RecursionError:  # circular structure; not our error to name
            path = None
        if path is None:
            raise ConfigurationError(
                f"cannot canonicalize payload: {exc}") from exc
        raise ConfigurationError(
            f"payload has a non-finite float at {path}; NaN/Infinity has "
            "no canonical JSON encoding and cannot be content-addressed"
        ) from exc


def _non_finite_path(obj: object, path: str = "$") -> str | None:
    """Key path of the first NaN/Infinity in a JSON-ready structure."""
    if isinstance(obj, float) and not math.isfinite(obj):
        return path
    if isinstance(obj, dict):
        for key in obj:
            found = _non_finite_path(obj[key], f"{path}.{key}")
            if found:
                return found
    elif isinstance(obj, (list, tuple)):
        for i, item in enumerate(obj):
            found = _non_finite_path(item, f"{path}[{i}]")
            if found:
                return found
    return None


def content_hash(obj: object) -> str:
    """SHA-256 over the canonical JSON of ``obj``."""
    return hashlib.sha256(canonical_json(obj).encode()).hexdigest()


def harness_hash(spec: "CellSpec") -> str:
    """Hash over the harness half of a cell spec (platform/network params)."""
    payload = spec.to_dict()
    return content_hash({k: payload[k] for k in _HARNESS_KEYS})


_git_describe_cache: str | None = None


def git_describe() -> str:
    """``git describe --always --dirty`` of the running checkout.

    Cached per process; returns ``"unknown"`` outside a git checkout or
    when git is unavailable — provenance must never fail an ingest.
    """
    global _git_describe_cache
    if _git_describe_cache is None:
        try:
            out = subprocess.run(
                ["git", "describe", "--always", "--dirty"],
                cwd=Path(__file__).resolve().parent,
                capture_output=True, text=True, timeout=10,
            )
            _git_describe_cache = out.stdout.strip() or "unknown"
        except (OSError, subprocess.SubprocessError):
            _git_describe_cache = "unknown"
    return _git_describe_cache


class TuningStore:
    """SQLite-backed tuning database (see the module docstring).

    Opening a path creates the file (and parent directory) if needed and
    migrates its schema to the latest version.  Instances are context
    managers; :meth:`close` checkpoints WAL back into the main file.
    """

    def __init__(self, path: str | Path, *, timeout: float = 30.0) -> None:
        from repro.store.schema import migrate

        self.path = Path(path)
        if self.path.exists() and self.path.is_dir():
            raise ConfigurationError(f"store path {self.path} is a directory")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        # One shared connection; check_same_thread off because the service
        # queries from handler threads — the RLock serializes statements.
        self._conn = sqlite3.connect(str(self.path), timeout=timeout,
                                     check_same_thread=False)
        self._conn.row_factory = sqlite3.Row
        try:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute("PRAGMA foreign_keys=ON")
            migrate(self._conn)
        except sqlite3.DatabaseError as exc:
            self._conn.close()
            raise StoreError(f"{self.path} is not a tuning store: {exc}") from exc

    # -- lifecycle ------------------------------------------------------- #

    def close(self) -> None:
        with self._lock:
            try:
                # Fold the WAL back into the main file so the store is a
                # single self-contained artifact (and its mtime advances).
                self._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
            except sqlite3.DatabaseError:  # pragma: no cover - best effort
                pass
            self._conn.close()

    def __enter__(self) -> "TuningStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def mtime(self) -> float:
        """Last-modified time across the database file and its WAL sidecar.

        WAL writes land in ``<path>-wal`` until a checkpoint, so watching
        the main file alone would miss live updates — the service's
        hot-reload check uses this.
        """
        stamp = 0.0
        for p in (self.path, Path(str(self.path) + "-wal")):
            try:
                stamp = max(stamp, p.stat().st_mtime)
            except OSError:
                pass
        return stamp

    # -- provenance ------------------------------------------------------ #

    def ensure_provenance(self, run_id: str = "", params_hash: str = "") -> int:
        """Row ID for this (run, code version, harness) provenance tuple.

        Idempotent: the same tuple always maps to the same row (only
        ``created_at`` of the *first* insert is kept).
        """
        describe = git_describe()
        with self._lock, self._conn:
            self._conn.execute(
                "INSERT OR IGNORE INTO provenance "
                "(run_id, model_version, params_hash, git_describe, created_at) "
                "VALUES (?, ?, ?, ?, ?)",
                (run_id, __version__, params_hash, describe,
                 datetime.now(timezone.utc).isoformat(timespec="seconds")),
            )
            row = self._conn.execute(
                "SELECT id FROM provenance WHERE run_id=? AND model_version=? "
                "AND params_hash=? AND git_describe=?",
                (run_id, __version__, params_hash, describe),
            ).fetchone()
        return int(row["id"])

    # -- ingest ---------------------------------------------------------- #

    def ingest_result(self, result: "BenchResult", *,
                      sweep_id: int | None = None,
                      provenance_id: int | None = None) -> tuple[int, bool]:
        """Store one benchmark cell; returns ``(row_id, inserted)``.

        Content-addressed: an identical result is a no-op (but a later
        ingest *linking* an existing standalone row to a sweep keeps the
        link).
        """
        payload = canonical_json(result.to_dict())
        digest = hashlib.sha256(payload.encode()).hexdigest()
        with self._lock, self._conn:
            row = self._conn.execute(
                "SELECT id, sweep_id FROM bench_results WHERE content_hash=?",
                (digest,),
            ).fetchone()
            if row is not None:
                if sweep_id is not None and row["sweep_id"] is None:
                    self._conn.execute(
                        "UPDATE bench_results SET sweep_id=? WHERE id=?",
                        (sweep_id, row["id"]),
                    )
                return int(row["id"]), False
            cur = self._conn.execute(
                "INSERT INTO bench_results (content_hash, sweep_id, collective,"
                " algorithm, msg_bytes, num_ranks, pattern, payload,"
                " provenance_id) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (digest, sweep_id, result.collective, result.algorithm,
                 float(result.msg_bytes), int(result.num_ranks),
                 result.pattern_name, payload, provenance_id),
            )
            return int(cur.lastrowid), True

    def ingest_sweep(self, sweep: "SweepResult", *,
                     provenance_id: int | None = None) -> tuple[int, bool]:
        """Store one sweep and all its cells; returns ``(sweep_id, inserted)``."""
        digest = content_hash(sweep.to_dict())
        with self._lock:
            with self._conn:
                row = self._conn.execute(
                    "SELECT id FROM sweeps WHERE content_hash=?", (digest,)
                ).fetchone()
                if row is not None:
                    sweep_id, inserted = int(row["id"]), False
                else:
                    cur = self._conn.execute(
                        "INSERT INTO sweeps (content_hash, collective,"
                        " comm_size, msg_bytes, machine, skew_by_pattern,"
                        " per_algorithm_skews, provenance_id)"
                        " VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                        (digest, sweep.collective, int(sweep.num_ranks),
                         float(sweep.msg_bytes), sweep.machine,
                         canonical_json(sweep.skew_by_pattern),
                         canonical_json(sweep.per_algorithm_skews),
                         provenance_id),
                    )
                    sweep_id, inserted = int(cur.lastrowid), True
            for cell in sweep.cells.values():
                self.ingest_result(cell, sweep_id=sweep_id,
                                   provenance_id=provenance_id)
        return sweep_id, inserted

    def add_rule(self, strategy: str, collective: str, comm_size: int,
                 msg_bytes: float, algorithm: str, *, pattern: str = "",
                 provenance_id: int | None = None) -> None:
        """Upsert one selection rule (last write wins for the algorithm)."""
        if not strategy or not collective or not algorithm:
            raise ConfigurationError("rule needs strategy, collective, algorithm")
        if comm_size <= 0 or msg_bytes < 0:
            raise ConfigurationError("invalid rule coordinates")
        with self._lock, self._conn:
            self._conn.execute(
                "INSERT INTO rules (strategy, collective, comm_size,"
                " msg_bytes, pattern, algorithm, provenance_id)"
                " VALUES (?, ?, ?, ?, ?, ?, ?)"
                " ON CONFLICT (strategy, collective, comm_size, msg_bytes,"
                " pattern) DO UPDATE SET algorithm=excluded.algorithm,"
                " provenance_id=excluded.provenance_id",
                (strategy, collective, int(comm_size), float(msg_bytes),
                 pattern, algorithm, provenance_id),
            )

    def store_table(self, table: "SelectionTable", *,
                    provenance_id: int | None = None) -> int:
        """Persist every rule of a selection table; returns the rule count."""
        strategy = table.strategy_name or "unnamed"
        n = 0
        for collective, comm_size, msg_bytes, algorithm in table.iter_rules():
            self.add_rule(strategy, collective, comm_size, msg_bytes,
                          algorithm, provenance_id=provenance_id)
            n += 1
        return n

    def ingest_campaign(self, result: "CampaignResult", *,
                        run_id: str = "", params_hash: str = "",
                        provenance_id: int | None = None,
                        pattern_rules: bool = True) -> dict[str, int]:
        """Sink a finished campaign: sweeps, cells, table rules, and (by
        default) the per-pattern best picks for pattern-conditioned queries.

        Returns counts of *newly inserted* sweeps plus total rule writes.
        Fully idempotent: re-ingesting the same campaign changes no row
        counts.
        """
        if provenance_id is None:
            provenance_id = self.ensure_provenance(run_id=run_id,
                                                   params_hash=params_hash)
        new_sweeps = 0
        rules = 0
        for sweep in result.sweeps.values():
            _sid, inserted = self.ingest_sweep(sweep,
                                               provenance_id=provenance_id)
            new_sweeps += inserted
            if pattern_rules:
                for pattern in sweep.patterns:
                    self.add_rule(
                        PATTERN_BEST, sweep.collective, sweep.num_ranks,
                        sweep.msg_bytes, sweep.best_algorithm(pattern),
                        pattern=pattern, provenance_id=provenance_id,
                    )
                    rules += 1
        rules += self.store_table(result.table, provenance_id=provenance_id)
        return {"new_sweeps": new_sweeps, "rules_written": rules}

    # -- linting --------------------------------------------------------- #

    def iter_cell_rows(self) -> Iterator[tuple[str, dict, str]]:
        """Yield ``(content_hash, payload, params_hash)`` per stored cell.

        ``params_hash`` is the row's provenance harness hash ('' when the
        row carries no provenance) — the lint engine's join key for
        cross-cell guidelines.  Payloads are decoded leniently (legacy rows
        may carry non-standard ``NaN`` tokens; the sanity guideline exists
        to flag exactly those).
        """
        with self._lock:
            rows = self._conn.execute(
                "SELECT b.content_hash AS digest, b.payload AS payload,"
                " COALESCE(p.params_hash, '') AS params_hash"
                " FROM bench_results b"
                " LEFT JOIN provenance p ON p.id = b.provenance_id"
                " ORDER BY b.id"
            ).fetchall()
        for row in rows:
            try:
                payload = json.loads(row["payload"])
            except ValueError as exc:
                raise StoreError(
                    f"corrupt cell payload {row['digest'][:12]} in "
                    f"{self.path}: {exc}"
                ) from exc
            yield row["digest"], payload, row["params_hash"]

    def record_lint(self, findings) -> int:
        """Upsert :class:`~repro.lint.report.LintFinding` rows; returns the
        number written.

        Keyed by (content hash, guideline): re-linting the same store
        updates verdicts in place instead of piling up duplicates.
        Findings without a content hash (in-memory data) are skipped.
        """
        now = datetime.now(timezone.utc).isoformat(timespec="seconds")
        n = 0
        with self._lock, self._conn:
            for f in findings:
                if not f.content_hash:
                    continue
                margin = float(f.margin) if math.isfinite(f.margin) else None
                self._conn.execute(
                    "INSERT INTO lint_findings (content_hash, guideline,"
                    " severity, margin, collective, algorithm, comm_size,"
                    " msg_bytes, pattern, detail, created_at)"
                    " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)"
                    " ON CONFLICT (content_hash, guideline) DO UPDATE SET"
                    " severity=excluded.severity, margin=excluded.margin,"
                    " detail=excluded.detail",
                    (f.content_hash, f.guideline, f.severity, margin,
                     f.collective, f.algorithm, int(f.comm_size),
                     float(f.msg_bytes), f.pattern, f.detail, now),
                )
                n += 1
        return n

    def set_suspect(self, hashes, suspect: bool = True) -> int:
        """Set or clear the suspect flag by content hash; returns rows hit."""
        flag = 1 if suspect else 0
        n = 0
        with self._lock, self._conn:
            for digest in hashes:
                if not digest:
                    continue
                cur = self._conn.execute(
                    "UPDATE bench_results SET suspect=? "
                    "WHERE content_hash=? AND suspect!=?",
                    (flag, digest, flag),
                )
                n += cur.rowcount
        return n

    def apply_lint(self, report, *,
                   suspect_severity: str = "error") -> dict[str, int]:
        """Persist a full lint run: finding rows plus suspect flags.

        Cells with a finding at or above ``suspect_severity`` are marked
        suspect; cells the report no longer indicts are *cleared* — a lint
        run evaluates every cell, so absence of a finding is evidence, not
        silence.  Returns counts of findings recorded and flags changed.
        """
        recorded = self.record_lint(report.findings)
        indicted = report.suspect_hashes(suspect_severity)
        current = self.suspect_hashes()
        marked = self.set_suspect(sorted(indicted - current), True)
        cleared = self.set_suspect(sorted(current - indicted), False)
        return {"findings_recorded": recorded, "cells_marked": marked,
                "cells_cleared": cleared}

    def clear_lint(self) -> None:
        """Drop every persisted finding and suspect flag."""
        with self._lock, self._conn:
            self._conn.execute("DELETE FROM lint_findings")
            self._conn.execute(
                "UPDATE bench_results SET suspect=0 WHERE suspect!=0")

    def suspect_hashes(self) -> set[str]:
        """Content hashes of every cell currently marked suspect."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT content_hash FROM bench_results WHERE suspect!=0"
            ).fetchall()
        return {r["content_hash"] for r in rows}

    def load_lint_findings(self) -> list:
        """Rebuild persisted findings (measured/bound are not stored)."""
        from repro.lint.report import LintFinding

        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM lint_findings ORDER BY id").fetchall()
        return [
            LintFinding(
                guideline=r["guideline"], severity=r["severity"],
                collective=r["collective"], algorithm=r["algorithm"],
                comm_size=int(r["comm_size"]),
                msg_bytes=float(r["msg_bytes"]), pattern=r["pattern"],
                content_hash=r["content_hash"],
                margin=(float(r["margin"]) if r["margin"] is not None
                        else math.nan),
                measured=math.nan, bound=math.nan, detail=r["detail"],
            )
            for r in rows
        ]

    def _suspect_only_coords(self, *, with_pattern: bool) -> set[tuple]:
        """Cell coordinates whose every measurement is marked suspect.

        A rule is only excluded when no clean cell corroborates it — one
        trustworthy measurement at the same coordinate keeps it servable.
        """
        with self._lock:
            if self._conn.execute(
                "SELECT 1 FROM bench_results WHERE suspect!=0 LIMIT 1"
            ).fetchone() is None:
                return set()
            cols = "collective, algorithm, num_ranks, msg_bytes"
            if with_pattern:
                cols += ", pattern"
            rows = self._conn.execute(
                f"SELECT {cols} FROM bench_results"
                f" GROUP BY {cols} HAVING SUM(suspect=0) = 0"
            ).fetchall()
        if with_pattern:
            return {(r["collective"], r["algorithm"], int(r["num_ranks"]),
                     float(r["msg_bytes"]), r["pattern"]) for r in rows}
        return {(r["collective"], r["algorithm"], int(r["num_ranks"]),
                 float(r["msg_bytes"])) for r in rows}

    # -- read back ------------------------------------------------------- #

    def strategies(self) -> list[str]:
        """Strategy names with pattern-agnostic rules in the store."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT DISTINCT strategy FROM rules WHERE pattern=''"
                " ORDER BY strategy"
            ).fetchall()
        return [r["strategy"] for r in rows]

    def load_table(self, strategy: str | None = None, *,
                   exclude_suspect: bool = True) -> "SelectionTable":
        """Rebuild the :class:`SelectionTable` stored under ``strategy``.

        With one strategy in the store the argument is optional; with
        several it must be named.  By default, rules whose every backing
        measurement is marked suspect (see :meth:`apply_lint`) are left
        out — the lookup's nearest-below bucketing or the caller's
        fallback covers the hole; pass ``exclude_suspect=False`` for the
        raw table.
        """
        from repro.selection.table import SelectionTable

        if strategy is None:
            names = self.strategies()
            if not names:
                raise StoreError(f"{self.path} holds no selection rules")
            if len(names) > 1:
                raise ConfigurationError(
                    f"store holds rules for strategies {names}; pick one"
                )
            strategy = names[0]
        with self._lock:
            rows = self._conn.execute(
                "SELECT collective, comm_size, msg_bytes, algorithm FROM rules"
                " WHERE pattern='' AND strategy=?"
                " ORDER BY collective, comm_size, msg_bytes",
                (strategy,),
            ).fetchall()
        dropped = 0
        if rows and exclude_suspect:
            # A pattern-agnostic rule may be backed by any pattern's cell,
            # so the coordinate key deliberately omits the pattern.
            bad = self._suspect_only_coords(with_pattern=False)
            if bad:
                kept = [r for r in rows
                        if (r["collective"], r["algorithm"],
                            int(r["comm_size"]), float(r["msg_bytes"]))
                        not in bad]
                dropped = len(rows) - len(kept)
                rows = kept
        if not rows:
            extra = (" (every rule derives solely from suspect cells)"
                     if dropped else "")
            raise StoreError(
                f"{self.path} holds no rules for strategy {strategy!r}{extra}"
            )
        table = SelectionTable(strategy_name=strategy)
        for r in rows:
            table.add_rule(r["collective"], int(r["comm_size"]),
                           float(r["msg_bytes"]), r["algorithm"])
        return table

    def load_pattern_tables(self, *, exclude_suspect: bool = True
                            ) -> dict[str, "SelectionTable"]:
        """One :class:`SelectionTable` per arrival pattern (may be empty).

        Reuses the table's nearest-below bucketing, so pattern-conditioned
        lookups behave exactly like pattern-agnostic ones.  Suspect-backed
        rules are excluded like :meth:`load_table` does, except the
        coordinate match includes the pattern.
        """
        from repro.selection.table import SelectionTable

        with self._lock:
            rows = self._conn.execute(
                "SELECT pattern, collective, comm_size, msg_bytes, algorithm"
                " FROM rules WHERE pattern!='' AND strategy=?"
                " ORDER BY pattern, collective, comm_size, msg_bytes",
                (PATTERN_BEST,),
            ).fetchall()
        if rows and exclude_suspect:
            bad = self._suspect_only_coords(with_pattern=True)
            if bad:
                rows = [r for r in rows
                        if (r["collective"], r["algorithm"],
                            int(r["comm_size"]), float(r["msg_bytes"]),
                            r["pattern"]) not in bad]
        tables: dict[str, SelectionTable] = {}
        for r in rows:
            table = tables.setdefault(
                r["pattern"], SelectionTable(strategy_name=PATTERN_BEST))
            table.add_rule(r["collective"], int(r["comm_size"]),
                           float(r["msg_bytes"]), r["algorithm"])
        return tables

    def load_sweeps(self, collective: str | None = None
                    ) -> Iterator["SweepResult"]:
        """Reconstruct stored sweeps (cells included), insertion-ordered."""
        from repro.bench.results import BenchResult, SweepResult

        where = "" if collective is None else " WHERE collective=?"
        params = () if collective is None else (collective,)
        with self._lock:
            sweep_rows = self._conn.execute(
                f"SELECT * FROM sweeps{where} ORDER BY id", params
            ).fetchall()
            cell_rows = {
                sid: self._conn.execute(
                    "SELECT payload FROM bench_results WHERE sweep_id=?"
                    " ORDER BY id", (sid,)
                ).fetchall()
                for sid in [r["id"] for r in sweep_rows]
            }
        for row in sweep_rows:
            try:
                sweep = SweepResult(
                    collective=row["collective"],
                    msg_bytes=float(row["msg_bytes"]),
                    num_ranks=int(row["comm_size"]),
                    machine=row["machine"],
                    skew_by_pattern=json.loads(row["skew_by_pattern"]),
                    per_algorithm_skews=json.loads(row["per_algorithm_skews"]),
                )
                for cell in cell_rows[row["id"]]:
                    sweep.add(BenchResult.from_dict(json.loads(cell["payload"])))
            except (ValueError, ConfigurationError) as exc:
                raise StoreError(
                    f"corrupt sweep row {row['id']} in {self.path}: {exc}"
                ) from exc
            yield sweep

    def counts(self) -> dict[str, int]:
        """Row counts per table — the idempotency tests' one-line probe."""
        with self._lock:
            return {
                table: int(self._conn.execute(
                    f"SELECT COUNT(*) AS n FROM {table}").fetchone()["n"])
                for table in ("provenance", "sweeps", "bench_results",
                              "rules", "lint_findings")
            }

    def schema_version(self) -> int:
        from repro.store.schema import schema_version

        with self._lock:
            return schema_version(self._conn)


def open_store(store: "TuningStore | str | Path") -> tuple[TuningStore, bool]:
    """Coerce a path-or-store into a store; returns ``(store, owned)``.

    ``owned`` tells the caller whether it opened (and must close) the
    connection — shared helper for every ``store=`` parameter in the
    package.
    """
    if isinstance(store, TuningStore):
        return store, False
    return TuningStore(store), True


__all__ = [
    "PATTERN_BEST",
    "TuningStore",
    "open_store",
    "canonical_json",
    "content_hash",
    "harness_hash",
    "git_describe",
]
