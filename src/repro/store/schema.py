"""Versioned schema + migration runner for the tuning store.

The store's schema is a linear sequence of migrations; the version a
database file is at lives in SQLite's ``PRAGMA user_version`` (0 for a
brand-new or empty file).  :func:`migrate` applies every migration above
the file's current version, in order, committing after each step — so any
store file ever written by this package opens cleanly under any newer
version of the code, and an empty v0 file migrates all the way to
:data:`LATEST_VERSION`.

Schema (v3):

``provenance``
    Where a row of data came from: the observability run ID, the package's
    model version, a hash over the harness (platform + network) parameters,
    and ``git describe`` of the producing checkout.
``sweeps``
    One row per ingested :class:`~repro.bench.results.SweepResult` —
    content-addressed by the SHA-256 of its canonical JSON, so re-ingesting
    an identical sweep is a no-op.
``bench_results``
    One row per benchmark cell (a :class:`~repro.bench.results.BenchResult`),
    content-addressed the same way; optionally linked to the sweep it
    belongs to.  The full result payload is stored as JSON, so a store
    round-trips bit-exact results.
``rules``
    Strategy-built selection rules — the persistent form of a
    :class:`~repro.selection.table.SelectionTable` — keyed by
    ``(strategy, collective, comm_size, msg_bytes, pattern)``.  An empty
    ``pattern`` is the pattern-agnostic rule a strategy produced;
    non-empty patterns hold per-pattern best picks for pattern-conditioned
    queries.
``lint_findings``
    Persisted guideline verdicts from :mod:`repro.lint` — one row per
    (cell content hash, guideline) pair; ``bench_results.suspect`` carries
    the distilled flag rule derivation respects (see
    ``docs/store-linting.md``).
"""

from __future__ import annotations

import sqlite3

from repro.errors import StoreError

_V1 = """
CREATE TABLE IF NOT EXISTS provenance (
    id INTEGER PRIMARY KEY,
    run_id TEXT NOT NULL DEFAULT '',
    model_version TEXT NOT NULL DEFAULT '',
    params_hash TEXT NOT NULL DEFAULT '',
    git_describe TEXT NOT NULL DEFAULT '',
    created_at TEXT NOT NULL DEFAULT '',
    UNIQUE (run_id, model_version, params_hash, git_describe)
);

CREATE TABLE IF NOT EXISTS sweeps (
    id INTEGER PRIMARY KEY,
    content_hash TEXT NOT NULL UNIQUE,
    collective TEXT NOT NULL,
    comm_size INTEGER NOT NULL,
    msg_bytes REAL NOT NULL,
    machine TEXT NOT NULL DEFAULT '',
    skew_by_pattern TEXT NOT NULL DEFAULT '{}',
    per_algorithm_skews TEXT NOT NULL DEFAULT '{}',
    provenance_id INTEGER REFERENCES provenance(id)
);
CREATE INDEX IF NOT EXISTS idx_sweeps_coord
    ON sweeps (collective, comm_size, msg_bytes);

CREATE TABLE IF NOT EXISTS bench_results (
    id INTEGER PRIMARY KEY,
    content_hash TEXT NOT NULL UNIQUE,
    sweep_id INTEGER REFERENCES sweeps(id),
    collective TEXT NOT NULL,
    algorithm TEXT NOT NULL,
    msg_bytes REAL NOT NULL,
    num_ranks INTEGER NOT NULL,
    pattern TEXT NOT NULL,
    payload TEXT NOT NULL,
    provenance_id INTEGER REFERENCES provenance(id)
);
CREATE INDEX IF NOT EXISTS idx_results_sweep ON bench_results (sweep_id);

CREATE TABLE IF NOT EXISTS rules (
    id INTEGER PRIMARY KEY,
    strategy TEXT NOT NULL,
    collective TEXT NOT NULL,
    comm_size INTEGER NOT NULL,
    msg_bytes REAL NOT NULL,
    pattern TEXT NOT NULL DEFAULT '',
    algorithm TEXT NOT NULL,
    provenance_id INTEGER REFERENCES provenance(id),
    UNIQUE (strategy, collective, comm_size, msg_bytes, pattern)
);
"""

# v2: the selection service's hot path resolves cells by coordinate, not by
# sweep — cover the query with one index.
_V2 = """
CREATE INDEX IF NOT EXISTS idx_results_coord
    ON bench_results (collective, num_ranks, msg_bytes, pattern);
"""

# v3: self-verifying stores (repro.lint).  ``suspect`` marks cells whose
# timings violate a guideline badly enough that rules must not be derived
# from them; ``lint_findings`` persists the verdicts themselves, keyed by
# (cell content hash, guideline) so re-linting upserts instead of piling up.
_V3 = """
ALTER TABLE bench_results ADD COLUMN suspect INTEGER NOT NULL DEFAULT 0;

CREATE TABLE IF NOT EXISTS lint_findings (
    id INTEGER PRIMARY KEY,
    content_hash TEXT NOT NULL,
    guideline TEXT NOT NULL,
    severity TEXT NOT NULL,
    margin REAL,
    collective TEXT NOT NULL DEFAULT '',
    algorithm TEXT NOT NULL DEFAULT '',
    comm_size INTEGER NOT NULL DEFAULT 0,
    msg_bytes REAL NOT NULL DEFAULT 0,
    pattern TEXT NOT NULL DEFAULT '',
    detail TEXT NOT NULL DEFAULT '',
    created_at TEXT NOT NULL DEFAULT '',
    UNIQUE (content_hash, guideline)
);

CREATE INDEX IF NOT EXISTS idx_results_suspect
    ON bench_results (suspect) WHERE suspect != 0;
"""

#: Ordered (version, SQL script) pairs; append-only across releases.
MIGRATIONS: list[tuple[int, str]] = [(1, _V1), (2, _V2), (3, _V3)]

LATEST_VERSION = MIGRATIONS[-1][0]


def schema_version(conn: sqlite3.Connection) -> int:
    """The schema version a connection's database file is at (0 = empty)."""
    return int(conn.execute("PRAGMA user_version").fetchone()[0])


def migrate(conn: sqlite3.Connection) -> list[int]:
    """Bring ``conn`` to :data:`LATEST_VERSION`; returns the versions applied.

    Each migration commits individually, so a failure mid-sequence leaves
    the file at the last fully-applied version (re-opening resumes there).
    A file *newer* than this code is refused — downgrading cannot be safe.
    """
    current = schema_version(conn)
    if current > LATEST_VERSION:
        raise StoreError(
            f"store schema is v{current}, but this code only knows up to "
            f"v{LATEST_VERSION}; upgrade the repro package to open it"
        )
    applied: list[int] = []
    for version, script in MIGRATIONS:
        if version <= current:
            continue
        conn.executescript(script)
        # PRAGMA takes no bound parameters; version is a trusted literal int.
        conn.execute(f"PRAGMA user_version = {int(version)}")
        conn.commit()
        applied.append(version)
    return applied


__all__ = ["MIGRATIONS", "LATEST_VERSION", "schema_version", "migrate"]
