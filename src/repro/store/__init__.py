"""Persistent tuning store: an SQLite database of sweeps, cells, and rules.

The durable half of the selection pipeline (the serving half is
:mod:`repro.service`): campaigns and executors sink their measurements
here, selection tables round-trip through it, and the selection service
warm-starts from it.  See :mod:`repro.store.tuning_store` for the data
model and :mod:`repro.store.schema` for the versioned schema.
"""

from repro.store.schema import LATEST_VERSION, MIGRATIONS, migrate, schema_version
from repro.store.tuning_store import (
    PATTERN_BEST,
    TuningStore,
    canonical_json,
    content_hash,
    git_describe,
    harness_hash,
    open_store,
)

__all__ = [
    "LATEST_VERSION",
    "MIGRATIONS",
    "migrate",
    "schema_version",
    "PATTERN_BEST",
    "TuningStore",
    "open_store",
    "canonical_json",
    "content_hash",
    "harness_hash",
    "git_describe",
]
