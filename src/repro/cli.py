"""Command-line interface: regenerate any paper figure or table.

Examples::

    repro-mpi fig4 --collective alltoall --nodes 16 --cores 4
    repro-mpi fig7 --machines hydra galileo100
    repro-mpi fig9 --fast
    repro-mpi table2
    repro-mpi all --fast
"""

from __future__ import annotations

import argparse
import sys
import time

from repro._version import __version__
from repro.experiments import tables
from repro.experiments.common import ExperimentConfig

_FIG_COLLECTIVES = ("reduce", "allreduce", "alltoall")


def _add_common(parser: argparse.ArgumentParser, machine_default: str = "hydra",
                nodes_default: int = 16, obs_trace: bool = True) -> None:
    parser.add_argument("--machine", default=machine_default,
                        help=f"machine preset (default: {machine_default})")
    parser.add_argument("--nodes", type=int, default=nodes_default)
    parser.add_argument("--cores", type=int, default=4, dest="cores_per_node")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--nrep", type=int, default=1)
    parser.add_argument("--fast", action="store_true",
                        help="shrink sweeps for a quick run")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also dump raw results as JSON")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the sweep fan-out "
                        "(default: 1 = serial; output is identical either way)")
    parser.add_argument("--cache-dir", default=None, metavar="PATH",
                        help="content-addressed result cache; re-runs skip "
                        "already-simulated cells")
    parser.add_argument("--engine-mode", default="exact",
                        choices=("exact", "hybrid", "flow"),
                        help="collective simulation engine: 'exact' simulates "
                        "every message; 'hybrid' collapses provably bit-exact "
                        "regular phases into analytic flow batches (large-scale "
                        "speedup, identical results); 'flow' forces the "
                        "analytic path even where it only approximates")
    parser.add_argument("--verbose", action="store_true",
                        help="print aggregate engine statistics (events, match "
                        "fast-path hits, events/s) to stderr when done; worker "
                        "processes report their runs back, so --jobs > 1 "
                        "counts everything")
    if obs_trace:
        parser.add_argument("--trace-out", default=None, metavar="PATH",
                            dest="obs_trace_out",
                            help="export a Perfetto/Chrome trace_event JSON of "
                            "this run (open at ui.perfetto.dev)")
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        dest="obs_metrics_out",
                        help="export the run's metrics snapshot (counters, "
                        "histograms, engine stats) as JSON")


def _config(args: argparse.Namespace, machine: str | None = None) -> ExperimentConfig:
    return ExperimentConfig(
        machine=machine or args.machine,
        nodes=args.nodes,
        cores_per_node=args.cores_per_node,
        seed=args.seed,
        nrep=args.nrep,
        fast=args.fast,
        jobs=getattr(args, "jobs", 1),
        cache_dir=getattr(args, "cache_dir", None),
        engine_mode=getattr(args, "engine_mode", "exact"),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mpi",
        description="Reproduce 'MPI Collective Algorithm Selection in the "
        "Presence of Process Arrival Patterns' (CLUSTER 2024).",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    p1 = sub.add_parser("fig1", help="FT Alltoall arrival-delay trace")
    _add_common(p1, machine_default="galileo100")

    p2 = sub.add_parser("fig2", help="arrival/exit notation example")
    _add_common(p2)

    p3 = sub.add_parser("fig3", help="artificial arrival-pattern shapes")
    _add_common(p3)

    for fig, helptext, default_machine in (
        ("fig4", "simulation study: best algorithm per pattern/size", "simcluster"),
        ("fig5", "runtimes under patterns, 5%%-of-best classification", "hydra"),
        ("fig6", "robustness heatmaps (+-25%% classification)", "hydra"),
    ):
        p = sub.add_parser(fig, help=helptext)
        _add_common(p, machine_default=default_machine)
        p.add_argument("--collective", default="reduce", choices=_FIG_COLLECTIVES)

    # The application study (Figs. 7-9) defaults to 8 x 4 = 32 ranks: the
    # machine noise profiles are calibrated so FT's traced skew is
    # commensurate with the 32 KiB Alltoall time at that scale.
    p7 = sub.add_parser("fig7", help="FT vs. No-delay Alltoall micro-benchmark")
    _add_common(p7, nodes_default=8)
    p7.add_argument("--machines", nargs="+",
                    default=["hydra", "galileo100", "discoverer"])

    p8 = sub.add_parser("fig8", help="normalized Alltoall runtimes incl. FT-Scenario")
    _add_common(p8, nodes_default=8)
    p8.add_argument("--machines", nargs="+",
                    default=["hydra", "galileo100", "discoverer"])

    p9 = sub.add_parser("fig9", help="actual vs. projected FT runtime")
    _add_common(p9, nodes_default=8)

    pext = sub.add_parser(
        "ext-selection",
        help="extension: fixed-rules vs no-delay vs robust vs online-adaptive on FT",
    )
    _add_common(pext)

    pnb = sub.add_parser(
        "ext-nonblocking",
        help="extension: blocking vs non-blocking collectives under noise",
    )
    _add_common(pnb)

    pclk = sub.add_parser(
        "ext-clocks",
        help="extension: clock-sync accuracy across rank counts and drift",
    )
    _add_common(pclk)

    pfam = sub.add_parser(
        "ext-families",
        help="extension: pattern sensitivity of every collective family",
    )
    _add_common(pfam, machine_default="simcluster")

    sub.add_parser("table1", help="machine presets (Table I analogue)")
    sub.add_parser("table2", help="algorithm IDs (Table II)")
    sub.add_parser("registry", help="every registered collective algorithm")

    pcheck = sub.add_parser(
        "selfcheck", help="validate every algorithm against MPI semantics"
    )
    pcheck.add_argument("--quick", action="store_true", help="fewer rank counts")

    ptrace = sub.add_parser(
        "trace",
        help="run a proxy application under the tracer; write trace + pattern files",
    )
    # obs_trace=False: this command's own --trace-out is the *application*
    # collective trace; the Perfetto export is still available via profile.
    _add_common(ptrace, machine_default="galileo100", nodes_default=8,
                obs_trace=False)
    ptrace.add_argument("--app", choices=["ft", "cg"], default="ft")
    ptrace.add_argument("--algorithm", default=None,
                        help="collective algorithm the app uses (default: app's)")
    ptrace.add_argument("--iterations", type=int, default=20)
    ptrace.add_argument("--trace-out", default="app.trace", metavar="PATH")
    ptrace.add_argument("--pattern-out", default="app.pattern", metavar="PATH")

    ptune = sub.add_parser(
        "tune",
        help="run a tuning campaign and emit a deployable Open MPI rules file",
    )
    _add_common(ptune)
    ptune.add_argument("--collectives", nargs="+",
                       default=["alltoall", "allreduce", "reduce"])
    ptune.add_argument("--sizes", nargs="+",
                       default=["8", "1KiB", "32KiB", "1MiB"],
                       help="message sizes (e.g. 8 1KiB 32KiB)")
    ptune.add_argument("--out", default="tuned", metavar="DIR",
                       help="output directory for table/rules/sweeps")
    ptune.add_argument("--store", default=None, metavar="DB",
                       help="also ingest results, sweeps, and rules into a "
                       "persistent tuning store (SQLite; created on first "
                       "use, re-runs are idempotent)")
    ptune.add_argument("--lint", action="store_true",
                       help="lint the campaign's data against the "
                       "performance guidelines after the run (see "
                       "lint-store); findings print but never fail the "
                       "campaign")

    pserve = sub.add_parser(
        "serve",
        help="serve selection queries from a tuning store over TCP "
        "(newline-delimited JSON; SIGHUP or a store change hot-reloads)",
    )
    pserve.add_argument("store", help="tuning store database (see tune --store)")
    pserve.add_argument("--host", default="127.0.0.1")
    pserve.add_argument("--port", type=int, default=7453,
                        help="TCP port (0 picks an ephemeral port)")
    pserve.add_argument("--cache-size", type=int, default=4096,
                        dest="cache_size",
                        help="reply LRU capacity (entries)")
    pserve.add_argument("--no-fallback", action="store_true", dest="no_fallback",
                        help="error on rule misses instead of answering with "
                        "Open MPI's fixed decision logic")
    pserve.add_argument("--reload-interval", type=float, default=1.0,
                        dest="reload_interval", metavar="SECONDS",
                        help="min seconds between store-mtime checks")
    pserve.add_argument("--metrics-port", type=int, default=None,
                        dest="metrics_port", metavar="PORT",
                        help="also serve Prometheus text metrics over plain "
                        "HTTP on this port (GET /metrics; 0 picks an "
                        "ephemeral port)")
    pserve.add_argument("--json-logs", action="store_true", dest="json_logs",
                        help="emit structured one-line-JSON logs on stderr "
                        "(connections, errors, slow requests, a periodic "
                        "metrics window)")
    pserve.add_argument("--slow-log-ms", type=float, default=100.0,
                        dest="slow_log_ms", metavar="MS",
                        help="with --json-logs, log successful requests "
                        "slower than this as request.slow")
    pserve.add_argument("--flight-capacity", type=int, default=32,
                        dest="flight_capacity", metavar="K",
                        help="slots per flight-recorder buffer (K slowest "
                        "+ last K erroring requests; op:debug / SIGUSR1)")

    pquery = sub.add_parser(
        "query",
        help="resolve one selection query against a store or a running server",
    )
    pquery.add_argument("collective")
    pquery.add_argument("comm_size", type=int)
    pquery.add_argument("msg_bytes", help="message size (e.g. 8, 1KiB, 32KiB)")
    pquery.add_argument("--pattern", default=None,
                        help="arrival-pattern shape for pattern-aware rules")
    pquery.add_argument("--store", default=None, metavar="DB",
                        help="answer in-process from this tuning store")
    pquery.add_argument("--host", default="127.0.0.1",
                        help="server to query when no --store is given")
    pquery.add_argument("--port", type=int, default=7453)
    pquery.add_argument("--json", action="store_true", dest="as_json",
                        help="print the full reply as JSON")

    plint = sub.add_parser(
        "lint-store",
        help="check a tuning store's cells against the performance "
        "guidelines (allreduce <= reduce + bcast, monotony, analytical "
        "floor, ...); optionally mark violating cells suspect",
    )
    plint.add_argument("store", help="tuning store database (see tune --store)")
    plint.add_argument("--json", default=None, dest="lint_json",
                       metavar="PATH",
                       help="write the full findings report as JSON "
                       "('-' for stdout)")
    plint.add_argument("--fail-on", choices=["error", "warning", "never"],
                       default="error", dest="fail_on",
                       help="lowest finding severity that makes the exit "
                       "code non-zero (default: error)")
    plint.add_argument("--mark", action="store_true",
                       help="persist the verdicts: record findings in the "
                       "store and flag error-severity cells suspect, so "
                       "rule loading excludes rules backed only by them")
    plint.add_argument("--limit", type=int, default=25,
                       help="max findings printed in text output")

    pcache = sub.add_parser(
        "cache", help="inspect or prune the on-disk benchmark result cache"
    )
    cache_sub = pcache.add_subparsers(dest="cache_cmd", required=True)
    pcs = cache_sub.add_parser("stats", help="entry and byte totals")
    pcg = cache_sub.add_parser(
        "gc", help="evict least-recently-used records down to a size budget"
    )
    pcg.add_argument("--max-bytes", required=True, dest="max_bytes",
                     metavar="SIZE",
                     help="target cache size (e.g. 10MiB, 0 empties it)")
    for p in (pcs, pcg):
        p.add_argument("--cache-dir", default=None, dest="cache_dir",
                       metavar="DIR",
                       help="cache directory (default: $REPRO_CACHE_DIR)")

    pwl = sub.add_parser(
        "workload",
        help="workload zoo: list/describe/run built-in scenarios, replay a "
        "recorded trace as a workload, or contend several jobs on one fabric",
    )
    wl_sub = pwl.add_subparsers(dest="workload_cmd", required=True)
    wl_sub.add_parser("list", help="registered workload generators")
    wld = wl_sub.add_parser(
        "describe", help="show a workload's phases for a given rank count"
    )
    wld.add_argument("name")
    wld.add_argument("--ranks", type=int, default=8,
                     help="communicator size the generator targets")
    wld.add_argument("--fast", action="store_true",
                     help="the shrunken variant (what CI smoke runs)")
    wld.add_argument("--seed", type=int, default=0)
    wld.add_argument("--json", action="store_true", dest="as_json",
                     help="print the full spec as JSON")
    wlr = wl_sub.add_parser(
        "run",
        help="run one workload: loop simulation + per-phase cells through "
        "the executor/cache/store pipeline",
    )
    _add_common(wlr, machine_default="simcluster", nodes_default=4)
    wlr.add_argument("name", help="a registered workload (see workload list)")
    wlr.add_argument("--shape", default=None,
                     help="impose an arrival-pattern shape on the measured "
                     "loop and the phase cells (see fig3)")
    wlr.add_argument("--max-skew", type=float, default=1e-4, dest="max_skew",
                     help="pattern max skew in seconds (with --shape)")
    wlr.add_argument("--store", default=None, metavar="DB",
                     help="ingest the phase cells into this tuning store")
    wlr.add_argument("--no-cells", action="store_true", dest="no_cells",
                     help="loop simulation only; skip the executor fan-out")
    wlp = wl_sub.add_parser(
        "replay",
        help="reconstruct a workload + arrival pattern from a recorded "
        "trace (Perfetto JSON or JSONL) and re-run it",
    )
    _add_common(wlp, machine_default="simcluster", nodes_default=4)
    wlp.add_argument("trace", help="trace file written by --trace-out")
    wlp.add_argument("--name", default=None, help="name for the replayed spec")
    wlp.add_argument("--max-iterations", type=int, default=None,
                     dest="max_iterations",
                     help="cap the replayed iteration count")
    wlp.add_argument("--store", default=None, metavar="DB",
                     help="ingest the phase cells into this tuning store")
    wlp.add_argument("--no-cells", action="store_true", dest="no_cells")
    wlp.add_argument("--dry-run", action="store_true", dest="dry_run",
                     help="print the reconstructed spec without running it")
    wlc = wl_sub.add_parser(
        "contend",
        help="run >= 2 workloads concurrently on one fabric; ranks "
        "interleave so jobs share node NICs",
    )
    _add_common(wlc, machine_default="simcluster", nodes_default=4)
    wlc.add_argument("names", nargs="+",
                     help="registered workloads, one per job")
    wlc.add_argument("--links", action="store_true",
                     help="record per-link telemetry and print the per-job "
                     "contention attribution")

    pprof = sub.add_parser(
        "profile",
        help="run one fully instrumented benchmark cell: ASCII per-rank "
        "timeline + Perfetto trace + metrics snapshot",
    )
    _add_common(pprof, machine_default="simcluster")
    pprof.add_argument("--collective", default="alltoall")
    pprof.add_argument("--algorithm", default=None,
                       help="algorithm to profile (default: first registered)")
    pprof.add_argument("--msg-bytes", default="32KiB", dest="msg_bytes",
                       help="message size (e.g. 8, 1KiB, 32KiB)")
    pprof.add_argument("--shape", default="ascending",
                       help="arrival-pattern shape (see fig3; 'no_delay' "
                       "profiles the balanced case)")
    pprof.add_argument("--max-skew", type=float, default=None, dest="max_skew",
                       help="pattern max skew in seconds (default: 1.5x the "
                       "No-delay runtime, the paper's headline factor)")
    pprof.add_argument("--timeline-width", type=int, default=64,
                       dest="timeline_width",
                       help="ASCII timeline body width in columns")
    pprof.add_argument("--links", action="store_true",
                       help="record per-link fabric telemetry: prints the "
                       "ASCII network weather map and contention "
                       "attribution, and publishes link.* gauges into the "
                       "metrics snapshot")
    pprof.add_argument("--links-out", default=None, metavar="PATH",
                       dest="links_out",
                       help="with --links: also write the link utilization "
                       "heatmap as a standalone SVG file")

    prep = sub.add_parser(
        "report",
        help="render a standalone HTML report (timeline, comm heatmap, "
        "paper metrics) from an exported trace file",
    )
    prep.add_argument("trace",
                      help="trace file: a --trace-out Perfetto JSON or a "
                      "JSONL obs stream")
    prep.add_argument("-o", "--out", default="report.html", metavar="PATH")
    prep.add_argument("--title", default="", help="report heading")

    pdiff = sub.add_parser(
        "diff-metrics",
        help="compare two metrics/analysis JSON snapshots; exit 1 when any "
        "value drifts beyond the threshold (host-time metrics excluded)",
    )
    pdiff.add_argument("baseline", help="reference snapshot JSON")
    pdiff.add_argument("candidate", help="snapshot JSON to check")
    pdiff.add_argument("--threshold", type=float, default=0.05,
                       metavar="FRACTION",
                       help="relative drift tolerance (default: 0.05 = 5%%)")

    pall = sub.add_parser("all", help="run every figure and table")
    _add_common(pall)

    return parser


def _run_one(command: str, args: argparse.Namespace) -> str:
    if command == "fig1":
        from repro.experiments import fig1_ft_trace as mod
        result = mod.run(_config(args))
    elif command == "fig2":
        from repro.experiments import fig2_notation as mod
        result = mod.run(_config(args))
    elif command == "fig3":
        from repro.experiments import fig3_patterns as mod
        result = mod.run(_config(args))
    elif command in ("fig4", "fig5", "fig6"):
        from repro.experiments import fig4_simulation, fig5_runtimes, fig6_robustness
        mod = {"fig4": fig4_simulation, "fig5": fig5_runtimes,
               "fig6": fig6_robustness}[command]
        result = mod.run(_config(args), collective=args.collective)
    elif command == "fig7":
        from repro.experiments import fig7_ft_vs_micro as mod
        result = mod.run(_config(args), machines=tuple(args.machines))
    elif command == "fig8":
        from repro.experiments import fig8_normalized as mod
        result = mod.run(_config(args), machines=tuple(args.machines))
    elif command == "fig9":
        from repro.experiments import fig9_prediction as mod
        result = mod.run(_config(args))
    elif command == "ext-selection":
        from repro.experiments import ext_selection_comparison as mod
        result = mod.run(_config(args))
    elif command == "ext-nonblocking":
        from repro.experiments import ext_nonblocking as mod
        result = mod.run(_config(args))
    elif command == "ext-clocks":
        from repro.experiments import ext_clock_accuracy as mod
        result = mod.run(_config(args))
    elif command == "ext-families":
        from repro.experiments import ext_all_families as mod
        result = mod.run(_config(args))
    else:
        raise ValueError(f"unknown figure {command!r}")
    if getattr(args, "json", None):
        from repro.reporting.export import results_to_json

        results_to_json(args.json, result)
    return mod.report(result)


def _cmd_profile(args: argparse.Namespace) -> int:
    """The ``profile`` command: one instrumented cell, rendered and exported."""
    from repro import obs
    from repro.collectives.base import list_algorithms
    from repro.patterns.generator import generate_pattern
    from repro.patterns.shapes import NO_DELAY
    from repro.reporting.timeline import render_timeline
    from repro.utils.units import format_time, parse_bytes

    config = _config(args)
    bench = config.make_bench()
    collective = args.collective
    algorithm = args.algorithm or list_algorithms(collective)[0]
    msg_bytes = parse_bytes(args.msg_bytes)
    octx = obs.current()
    # The No-delay baseline sizes the default skew (the paper's policy).
    baseline = bench.run(collective, algorithm, msg_bytes)
    if args.shape == NO_DELAY:
        result = baseline
        timeline_from = 0
    else:
        skew = (args.max_skew if args.max_skew is not None
                else config.skew_factor * baseline.last_delay)
        pattern = generate_pattern(args.shape, bench.num_ranks, skew,
                                   seed=config.seed)
        # Chart only the patterned run's spans: each run restarts virtual
        # time at zero, so overlaying both would garble the timeline.
        timeline_from = len(octx.spans) if octx.spans is not None else 0
        result = bench.run(collective, algorithm, msg_bytes, pattern)
    print(f"profile {collective}/{algorithm} @ {args.msg_bytes} "
          f"on {config.machine} ({bench.num_ranks} ranks), "
          f"pattern {result.pattern_name} "
          f"(max skew {format_time(result.max_skew)})")
    print(f"  No-delay runtime {format_time(baseline.last_delay)}; "
          f"under pattern {format_time(result.last_delay)}")
    if octx.enabled and octx.spans is not None:
        spans = list(octx.spans)[timeline_from:]
        print()
        print(render_timeline(
            spans, width=args.timeline_width,
            names={"skew_wait", f"{collective}/{algorithm}"},
            title=f"virtual timeline ({collective}/{algorithm}, "
            f"{result.pattern_name})",
        ))
    if octx.enabled and octx.links is not None:
        _profile_links(args, octx)
    return 0


def _profile_links(args: argparse.Namespace, octx) -> None:
    """Render the ``--links`` outputs from a profiled session's records."""
    from repro.obs.analysis import TraceAnalysis
    from repro.reporting.svg import svg_heatmap
    from repro.reporting.weather import render_weather_map
    from repro.utils.units import format_time

    analysis = TraceAnalysis.from_context(octx)
    usage = analysis.link_usage()
    print()
    if not usage:
        print("fabric weather map: no link records (self-sends only?)")
        return
    timeline = analysis.link_timeline(bins=args.timeline_width)
    print(render_weather_map(timeline, usage,
                             title="fabric weather map (hottest links first)"))
    hot = analysis.link_hotspots(top=5)
    print()
    print("link hotspots (by contention wait):")
    for u in hot:
        print(f"  {u['link']}: wait {format_time(u['wait'])}, "
              f"busy {format_time(u['busy'])}, {u['bytes']:g} bytes "
              f"in {u['messages']} messages")
    attr = [r for r in analysis.link_attribution() if r["wait"] > 0.0]
    top = (hot[0]["port"], hot[0]["cls"], hot[0]["direction"])
    blame = [r for r in attr
             if (r["port"], r["cls"], r["direction"]) == top]
    if blame:
        print(f"  hotspot attribution ({hot[0]['link']}): " + ", ".join(
            f"{r['activity']} {format_time(r['wait'])}" for r in blame))
    # The gauges ride into --metrics-out and the Prometheus exposition path.
    octx.links.publish_gauges(octx.metrics)
    links_out = getattr(args, "links_out", None)
    if links_out:
        rows = analysis.link_timeline(bins=48)["rows"]
        values = [[min(b, 1.0) for b in r["busy"]] for r in rows]
        svg = svg_heatmap(values, [r["link"] for r in rows],
                          [str(i) for i in range(48)],
                          title="busy fraction per link over time bins")
        with open(links_out, "w") as fh:
            fh.write(svg)
        print(f"wrote link heatmap: {links_out}")


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs.report import write_report

    path = write_report(args.out, args.trace, title=args.title)
    print(f"wrote report: {path}")
    return 0


def _cmd_diff_metrics(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.obs.analysis import diff_payloads

    baseline = json.loads(Path(args.baseline).read_text())
    candidate = json.loads(Path(args.candidate).read_text())
    drifts = diff_payloads(baseline, candidate, threshold=args.threshold)
    if not drifts:
        print(f"metrics agree within {args.threshold:.1%}: "
              f"{args.baseline} vs {args.candidate}")
        return 0
    print(f"{len(drifts)} metric(s) drifted beyond {args.threshold:.1%} "
          f"({args.baseline} -> {args.candidate}):")
    for d in drifts:
        if d["change"] is None:
            print(f"  {d['path']}: {d['direction']} "
                  f"(baseline={d['baseline']}, candidate={d['candidate']})")
        else:
            print(f"  {d['path']}: {d['baseline']:g} -> {d['candidate']:g} "
                  f"({d['change']:+.1%})")
    return 1


def _executor_summary(octx) -> str | None:
    """Cache hit-rate / per-cell timing line from the metrics registry."""
    m = octx.metrics
    cells = m.get("executor.cells")
    if cells is None or not cells.value:
        return None
    hits = m.get("executor.cache_hit_total")
    hit_n = hits.value if hits is not None else 0
    text = (f"executor: {cells.value} cells, {hit_n} cache hits "
            f"({int(hit_n / cells.value * 100)}% hit rate)")
    hist = m.get("executor.cell_seconds")
    if hist is not None and hist.count:
        text += (f"; cell time mean {hist.mean:.3f}s, max {hist.max:.3f}s, "
                 f"total {hist.total:.2f}s")
    return text


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.obs import MetricsHTTPServer, WindowedSnapshotter
    from repro.obs.runid import make_run_id
    from repro.service import (
        JsonLogger,
        SelectionServer,
        SelectionService,
        install_sighup_reload,
        install_sigusr1_dump,
    )

    service = SelectionService(
        args.store,
        cache_size=args.cache_size,
        fallback=not args.no_fallback,
        reload_interval=args.reload_interval,
        flight_capacity=args.flight_capacity,
    )
    install_sighup_reload(service)
    install_sigusr1_dump(service)
    logger = None
    snapshotter = None
    if args.json_logs:
        import os

        logger = JsonLogger(run_id=make_run_id({
            "command": "serve", "store": str(args.store),
            "pid": os.getpid(), "started": time.time()}))
        snapshotter = WindowedSnapshotter(
            service.metrics, interval=30.0,
            on_window=lambda w: logger.log("metrics.window", **w))
    metrics_http = None
    with service:
        server = SelectionServer(
            service, host=args.host, port=args.port, logger=logger,
            slow_log_seconds=args.slow_log_ms / 1e3)
        host, port = server.address
        strategy = service.strategy or "<fallback only>"
        scrape = ""
        if args.metrics_port is not None:
            metrics_http = MetricsHTTPServer(
                service.metrics, host=args.host,
                port=args.metrics_port).start()
            mhost, mport = metrics_http.address
            scrape = f", metrics on http://{mhost}:{mport}/metrics"
        print(f"serving {args.store} (strategy {strategy}) "
              f"on {host}:{port}{scrape}", flush=True)
        if logger is not None:
            logger.log("serve.start", store=str(args.store),
                       strategy=strategy, host=host, port=port,
                       metrics_port=(metrics_http.address[1]
                                     if metrics_http else None))
        if snapshotter is not None:
            snapshotter.start()
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            if snapshotter is not None:
                snapshotter.stop()
            if metrics_http is not None:
                metrics_http.stop()
            server.stop()
            if logger is not None:
                logger.log("serve.stop", uptime_seconds=round(
                    service.uptime_seconds(), 3))
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    import json

    from repro.utils.units import parse_bytes

    msg_bytes = parse_bytes(args.msg_bytes)
    if args.store is not None:
        from repro.service import InProcessClient, SelectionService

        with SelectionService(args.store, watch_store=False) as service:
            client = InProcessClient(service)
            reply = client.query(args.collective, args.comm_size, msg_bytes,
                                 args.pattern)
    else:
        from repro.service import SelectionClient

        with SelectionClient(args.host, args.port) as client:
            reply = client.query(args.collective, args.comm_size, msg_bytes,
                                 args.pattern)
    if args.as_json:
        print(json.dumps(reply, sort_keys=True))
    else:
        print(f"{reply['algorithm']}  (source {reply['source']}"
              + (f", strategy {reply['strategy']}" if reply["strategy"]
                 else "") + ")")
    return 0


def _cmd_lint_store(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.lint import lint_store
    from repro.store import TuningStore

    with TuningStore(args.store) as store:
        report = lint_store(store)
        if args.mark:
            applied = store.apply_lint(report)
            print(f"marked: {applied['cells_marked']} cell(s) newly "
                  f"suspect, {applied['cells_cleared']} cleared, "
                  f"{applied['findings_recorded']} finding(s) recorded",
                  file=sys.stderr)
    if args.lint_json is not None:
        payload = json.dumps(report.to_dict(), indent=2, sort_keys=True)
        if args.lint_json == "-":
            print(payload)
        else:
            Path(args.lint_json).write_text(payload + "\n")
            print(f"wrote findings: {args.lint_json}", file=sys.stderr)
    if args.lint_json != "-":
        print(report.render_text(limit=args.limit))
    return 1 if report.fails(args.fail_on) else 0


def _cmd_cache(args: argparse.Namespace) -> int:
    import os

    from repro.bench.executor import ResultCache
    from repro.utils.units import format_bytes, parse_bytes

    cache_dir = args.cache_dir or os.environ.get("REPRO_CACHE_DIR")
    if not cache_dir:
        print("no cache directory: pass --cache-dir or set REPRO_CACHE_DIR",
              file=sys.stderr)
        return 2
    cache = ResultCache(cache_dir)
    if args.cache_cmd == "stats":
        stats = cache.stats()
        print(f"{cache_dir}: {stats.entries} entries, "
              f"{format_bytes(stats.total_bytes)} "
              f"({stats.total_bytes} bytes)")
    else:  # gc
        budget = int(parse_bytes(args.max_bytes))
        evicted, freed = cache.gc(budget)
        stats = cache.stats()
        print(f"evicted {evicted} entries ({format_bytes(freed)}); "
              f"{stats.entries} entries, {format_bytes(stats.total_bytes)} "
              f"remain")
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    import json
    from dataclasses import replace as _dc_replace

    from repro import workloads
    from repro.reporting.ascii import render_table
    from repro.utils.units import format_time

    cmd = args.workload_cmd
    if cmd == "list":
        rows = [(info.name, info.description)
                for info in workloads.list_workloads()]
        print(render_table(["workload", "description"], rows,
                           title=f"workload zoo ({len(rows)} registered)"))
        return 0
    if cmd == "describe":
        spec = workloads.build_workload(args.name, args.ranks,
                                        fast=args.fast, seed=args.seed)
        if args.as_json:
            print(json.dumps(spec.to_dict(), indent=2, sort_keys=True))
            return 0
        print(f"{spec.name}: {spec.description}")
        print(f"  {args.ranks} ranks, {spec.iterations} iterations "
              f"(+{spec.warmup} warmup), overlap {spec.overlap}, "
              f"compute {spec.compute:g} s/iteration")
        rows = []
        for ph in spec.phases:
            if ph.is_vector:
                kind = ("(p,p) matrix" if isinstance(ph.counts[0], tuple)
                        else "length-p counts")
                schedule = f"{kind}, ~{int(ph.effective_msg_bytes)} B/block"
            else:
                schedule = f"{int(ph.msg_bytes)} B"
            rows.append((ph.key, ph.collective, schedule,
                         ph.algorithm or "<resolved at run time>"))
        print(render_table(["phase", "collective", "schedule", "algorithm"],
                           rows))
        return 0

    config = _config(args)
    bench = config.make_bench()
    if cmd == "contend":
        p_total = bench.num_ranks
        njobs = len(args.names)
        specs = [
            workloads.build_workload(
                name, len(range(j, p_total, njobs)),
                fast=config.fast, seed=config.seed + j)
            for j, name in enumerate(args.names)
        ]
        result = workloads.run_contended(specs, bench)
        print(f"contended {njobs} jobs on {p_total} ranks "
              f"({config.machine}); fabric drained at "
              f"{format_time(result.final_time)}")
        for job in result.jobs:
            dominant = max(job.phase_mpi_time, key=job.phase_mpi_time.get)
            print(f"  {job.label}: {len(job.ranks)} ranks, runtime "
                  f"{format_time(job.runtime)}, dominant phase {dominant}")
        if result.attribution:
            print("link wait attribution by job:")
            for name, wait in sorted(result.wait_by_job().items(),
                                     key=lambda kv: -kv[1]):
                print(f"  {name}: {format_time(wait)}")
        elif args.links:
            print("no link records captured (self-sends only?)")
        if args.json:
            payload = {
                "final_time": result.final_time,
                "jobs": [{"label": j.label, "ranks": list(j.ranks),
                          "runtime": j.runtime, "resolved": j.resolved,
                          "phase_mpi_time": j.phase_mpi_time}
                         for j in result.jobs],
                "attribution": result.attribution,
                "wait_by_job": result.wait_by_job(),
            }
            with open(args.json, "w") as fh:
                json.dump(payload, fh, indent=2, sort_keys=True)
            print(f"wrote json: {args.json}")
        return 0

    # run / replay
    if cmd == "run":
        spec = workloads.build_workload(args.name, bench.num_ranks,
                                        fast=config.fast, seed=config.seed)
        pattern = None
        if args.shape:
            from repro.patterns.generator import generate_pattern

            pattern = generate_pattern(args.shape, bench.num_ranks,
                                       args.max_skew, seed=config.seed)
    else:  # replay
        spec = workloads.workload_from_trace(args.trace, name=args.name,
                                             max_iterations=args.max_iterations)
        pattern = None
        if args.dry_run:
            print(json.dumps(spec.to_dict(), indent=2, sort_keys=True))
            return 0
        if spec.pattern is not None:
            p = len(spec.pattern.skews)
            if bench.num_ranks != p:
                cores = config.cores_per_node
                if p >= cores and p % cores == 0:
                    config = _dc_replace(config, nodes=p // cores)
                else:
                    config = _dc_replace(config, nodes=p, cores_per_node=1)
                bench = config.make_bench()
                print(f"platform resized to the trace's {p} ranks",
                      file=sys.stderr)
    executor = None
    if not args.no_cells:
        from repro.bench.executor import CellExecutor

        executor = CellExecutor.from_env(
            jobs=config.jobs if config.jobs != 1 else None,
            cache_dir=config.cache_dir, store=args.store)
    try:
        result = workloads.run_workload(spec, bench, executor=executor,
                                        pattern=pattern,
                                        cells=not args.no_cells)
    finally:
        if executor is not None:
            executor.close()
    print(f"{spec.name}: {spec.description}" if spec.description
          else spec.name)
    pattern_note = ""
    if pattern is not None:
        pattern_note = f", pattern {pattern.name}"
    elif spec.pattern is not None:
        pattern_note = f", pattern {spec.pattern.name}"
    print(f"  {bench.num_ranks} ranks on {config.machine}, "
          f"{spec.iterations} iteration(s) (+{spec.warmup} warmup), "
          f"overlap {spec.overlap}{pattern_note}")
    print(f"  runtime {format_time(result.runtime)}, dominant phase "
          f"{result.dominant_phase}")
    for key, algorithm in result.resolved.items():
        mpi = result.phase_mpi_time.get(key, 0.0)
        print(f"    {key}: {algorithm}, MPI time {format_time(mpi)}")
    if result.cell_results:
        print(f"  {len(result.cell_results)} phase cell(s) through the "
              f"executor" + (f" -> store {args.store}" if args.store else ""))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(result.to_dict(), fh, indent=2, sort_keys=True)
        print(f"wrote json: {args.json}")
    return 0


def _dispatch(command: str, args: argparse.Namespace) -> int:
    if command == "table1":
        print(tables.table1())
    elif command == "table2":
        print(tables.table2())
    elif command == "registry":
        print(tables.full_registry())
    elif command == "selfcheck":
        from repro.collectives.validate import validate_all

        report = validate_all(quick=args.quick)
        print(report.render())
        if not report.ok:
            return 1
    elif command == "trace":
        from repro.apps import CGProxy, FTProxy
        from repro.patterns import write_pattern_file
        from repro.sim.platform import get_machine
        from repro.tracing import (
            CollectiveTracer,
            max_observed_skew,
            pattern_from_trace,
            write_trace,
        )

        config = _config(args)
        spec = get_machine(config.machine)
        if args.app == "ft":
            app = FTProxy.class_d_scaled(
                spec, nodes=config.nodes, cores_per_node=config.cores_per_node,
                seed=config.seed, iterations=args.iterations,
                algorithm=args.algorithm or "pairwise",
            )
        else:
            app = CGProxy.from_machine(spec, nodes=config.nodes,
                                       cores_per_node=config.cores_per_node,
                                       seed=config.seed,
                                       iterations=args.iterations)
            if args.algorithm:
                app.algorithm = args.algorithm
        tracer = CollectiveTracer()
        app_result = app.run(tracer)
        coll = app.collective
        p = config.num_ranks
        pattern = pattern_from_trace(tracer, coll, p,
                                     name=f"{args.app}_scenario")
        write_trace(args.trace_out, tracer,
                    metadata={"app": args.app, "machine": config.machine,
                              "algorithm": app.algorithm})
        write_pattern_file(args.pattern_out, pattern)
        print(f"{args.app} runtime: {app_result.runtime * 1e3:.2f} ms "
              f"(MPI fraction {app_result.mpi_fraction:.2f})")
        print(f"traced {tracer.num_calls(coll)} {coll} calls; max skew "
              f"{max_observed_skew(tracer, coll, p) * 1e6:.1f} us")
        print(f"wrote trace: {args.trace_out}")
        print(f"wrote pattern: {args.pattern_out}")
    elif command == "tune":
        from repro.bench.campaign import TuningCampaign
        from repro.reporting.ascii import render_table

        config = _config(args)
        campaign = TuningCampaign(
            bench=config.make_bench(nrep=max(config.nrep, 2)),
            collectives=args.collectives,
            msg_sizes=args.sizes,
            seed=config.seed,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            store=args.store,
            lint_after=args.lint,
        )
        try:
            result = campaign.run(
                progress=lambda c, s: print(f"  tuning {c} @ {s} B ...",
                                            file=sys.stderr)
            )
        finally:
            campaign.close()
        paths = campaign.save(result, args.out)
        print(f"  [{result.stats.summary()}]", file=sys.stderr)
        if result.store_ingest is not None:
            print(f"store: {args.store} "
                  f"(+{result.store_ingest['new_sweeps']} sweeps, "
                  f"{result.store_ingest['rules_written']} rules)")
        if result.lint_report is not None:
            print(result.lint_report.render_text(limit=10))
        print(render_table(["collective", "size", "selected algorithm"],
                           result.summary_rows(),
                           title=f"Tuned table ({config.machine}, "
                           f"{config.num_ranks} ranks, strategy "
                           f"{campaign.strategy.name})"))
        for kind, path in paths.items():
            print(f"wrote {kind}: {path}")
    elif command == "all":
        # Fig. 1 is the paper's Galileo100 trace; the application study
        # (Figs. 7-9) runs at its calibrated 8-node scale.
        saved_machine, saved_nodes0 = args.machine, args.nodes
        args.machine, args.nodes = "galileo100", min(args.nodes, 8)
        print(_run_one("fig1", args))
        print()
        args.machine, args.nodes = saved_machine, saved_nodes0
        for fig in ("fig2", "fig3"):
            print(_run_one(fig, args))
            print()
        for fig in ("fig4", "fig5", "fig6"):
            for collective in _FIG_COLLECTIVES:
                args.collective = collective
                print(_run_one(fig, args))
                print()
        args.machines = ["hydra", "galileo100", "discoverer"]
        saved_nodes = args.nodes
        args.nodes = min(args.nodes, 8)  # application-study scale (see fig7 help)
        for fig in ("fig7", "fig8", "fig9"):
            print(_run_one(fig, args))
            print()
        args.nodes = saved_nodes
        print(tables.table1())
        print()
        print(tables.table2())
    elif command == "serve":
        return _cmd_serve(args)
    elif command == "query":
        return _cmd_query(args)
    elif command == "lint-store":
        return _cmd_lint_store(args)
    elif command == "cache":
        return _cmd_cache(args)
    elif command == "workload":
        return _cmd_workload(args)
    elif command == "profile":
        return _cmd_profile(args)
    elif command == "report":
        return _cmd_report(args)
    elif command == "diff-metrics":
        return _cmd_diff_metrics(args)
    else:
        print(_run_one(command, args))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    command = args.command
    started = time.time()
    trace_out = getattr(args, "obs_trace_out", None)
    if command == "profile" and trace_out is None:
        trace_out = "profile_trace.json"
    metrics_out = getattr(args, "obs_metrics_out", None)
    verbose = getattr(args, "verbose", False)
    # Every command with harness knobs runs inside an observability session:
    # metrics always (counters are near-free and feed the summaries below);
    # span recording only when someone will consume a trace.
    octx = None
    if hasattr(args, "obs_metrics_out"):
        from repro import obs

        # profile is the deep-dive command: per-message spans feed the
        # comm-volume matrices and critical-path sections of the report,
        # and --links turns on the fabric telemetry recorder.
        with obs.session(meta={"command": command},
                         record_spans=bool(trace_out),
                         record_messages=(command == "profile"),
                         record_links=getattr(args, "links", False)
                         ) as octx:
            code = _dispatch(command, args)
    else:
        code = _dispatch(command, args)
    if octx is not None:
        from repro import obs

        if trace_out:
            print(f"wrote trace: {obs.export_perfetto(trace_out, octx)}")
        if metrics_out:
            print(f"wrote metrics: {obs.export_metrics(metrics_out, octx)}")
        overflow = obs.dropped_span_warning(octx)
        if overflow is not None:
            print(overflow, file=sys.stderr)
        summary = _executor_summary(octx)
        if summary is not None:
            print(f"  [{summary}]", file=sys.stderr)
        if verbose:
            # Aggregated over every Engine.run of this session — including
            # worker-process runs, whose stats merge back with each cell's
            # telemetry payload.
            agg = octx.engine_stats
            if agg is not None:
                print(f"[engine: {agg.runs} runs, {agg.summary()}]",
                      file=sys.stderr)
            else:
                print("[engine: 0 runs]", file=sys.stderr)
    print(f"\n[{command} completed in {time.time() - started:.1f}s]", file=sys.stderr)
    return code


if __name__ == "__main__":
    raise SystemExit(main())
