"""Export a :class:`SelectionTable` as an Open MPI ``coll_tuned`` dynamic rules file.

The produced file follows the classic ``coll_tuned_dynamic_rules_filename``
format::

    <number of collectives>
    <collective id>          # coll_tuned component numbering
    <number of comm sizes>
    <comm size>
    <number of message sizes>
    <msg size> <algorithm id> <topo/fanout> <segment size>
    ...

so a table tuned inside the simulator can, in principle, be dropped onto a
real Open MPI 4.1.x installation (algorithm IDs follow the paper's
Table II via the registry's ``ompi_id``).
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import ConfigurationError
from repro.collectives.base import get_algorithm
from repro.selection.table import SelectionTable

#: Open MPI coll_tuned collective numbering (coll_base_functions.h order).
OMPI_COLL_IDS = {
    "allgather": 0,
    "allgatherv": 1,
    "allreduce": 2,
    "alltoall": 3,
    "alltoallv": 4,
    "alltoallw": 5,
    "barrier": 6,
    "bcast": 7,
    "exscan": 8,
    "gather": 9,
    "gatherv": 10,
    "reduce": 11,
    "reduce_scatter": 12,
    "reduce_scatter_block": 13,
    "scan": 14,
    "scatter": 15,
    "scatterv": 16,
}


def write_ompi_rules_file(path: str | Path, table: SelectionTable) -> None:
    """Serialize ``table`` in coll_tuned dynamic-rules format."""
    collectives = table.collectives
    if not collectives:
        raise ConfigurationError("selection table is empty")
    lines: list[str] = [f"{len(collectives)}"]
    for coll in collectives:
        try:
            coll_id = OMPI_COLL_IDS[coll]
        except KeyError:
            raise ConfigurationError(f"no Open MPI id for collective {coll!r}") from None
        lines.append(f"{coll_id}  # {coll}")
        sizes = table.comm_sizes(coll)
        lines.append(f"{len(sizes)}")
        for comm_size in sizes:
            lines.append(f"{comm_size}  # comm size")
            rules = table.rules_for(coll, comm_size)
            # coll_tuned boundaries are integers; truncating fractional
            # boundaries can collapse two rules onto one message size, and
            # duplicate sizes make the file invalid.  Merge in ascending
            # boundary order so the larger original boundary's algorithm
            # wins the collision (it governs the upper part of the range).
            merged: dict[int, str] = {}
            for msg_bytes, algorithm in rules:
                merged[int(msg_bytes)] = algorithm
            if 0 not in merged and merged:
                # coll_tuned expects coverage from message size 0; below
                # the smallest boundary the smallest rule applies (same
                # semantics as SelectionTable.lookup's undershoot).
                merged[0] = rules[0][1]
            lines.append(f"{len(merged)}")
            for msg_size in sorted(merged):
                algorithm = merged[msg_size]
                info = get_algorithm(coll, algorithm)
                if info.ompi_id is None:
                    raise ConfigurationError(
                        f"{coll}/{algorithm} has no Open MPI algorithm id"
                    )
                lines.append(f"{msg_size} {info.ompi_id} 0 0  # {algorithm}")
    Path(path).write_text("\n".join(lines) + "\n")
