"""Algorithm-selection strategies (the paper's contribution, Section V-C).

Given benchmark sweeps across arrival patterns, a strategy picks one
algorithm per (collective, communicator size, message size):

* :class:`NoDelaySelector` — classic tuning: fastest under perfect
  synchronization (what OSU-style micro-benchmarks give you).
* :class:`RobustAverageSelector` — the paper's proposal: smallest *average
  row-normalized runtime* across arrival patterns.
* :class:`MinMaxSelector` — a stricter robustness variant: smallest
  worst-case normalized runtime.
* :class:`OracleSelector` — fastest under one known (e.g. traced) pattern;
  the upper bound a perfect prediction could reach.
"""

from repro.selection.strategies import (
    MinMaxSelector,
    NoDelaySelector,
    OracleSelector,
    RobustAverageSelector,
    SelectionStrategy,
)
from repro.selection.table import SelectionTable
from repro.selection.ompi_rules import write_ompi_rules_file
from repro.selection.online import (
    AdaptiveSelector,
    PatternClassifier,
    run_adaptive_app,
)

__all__ = [
    "SelectionStrategy",
    "NoDelaySelector",
    "RobustAverageSelector",
    "MinMaxSelector",
    "OracleSelector",
    "SelectionTable",
    "write_ompi_rules_file",
    "AdaptiveSelector",
    "PatternClassifier",
    "run_adaptive_app",
]
