"""Selection strategies over pattern sweeps."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import ConfigurationError
from repro.bench.results import SweepResult
from repro.bench.robustness import average_normalized, normalize_rows
from repro.patterns.shapes import NO_DELAY


def _table(sweep: SweepResult) -> dict[str, dict[str, float]]:
    """pattern -> algorithm -> mean last delay."""
    return {pattern: sweep.row(pattern) for pattern in sweep.patterns}


class SelectionStrategy(ABC):
    """Picks one algorithm for the slice a :class:`SweepResult` covers."""

    name: str = "strategy"

    @abstractmethod
    def score(self, sweep: SweepResult) -> dict[str, float]:
        """Per-algorithm score; lower is better."""

    def select(self, sweep: SweepResult) -> str:
        scores = self.score(sweep)
        if not scores:
            raise ConfigurationError("sweep contains no algorithms")
        return min(scores, key=scores.get)


class NoDelaySelector(SelectionStrategy):
    """Fastest algorithm when all ranks enter simultaneously."""

    name = "no_delay"

    def score(self, sweep: SweepResult) -> dict[str, float]:
        if NO_DELAY not in sweep.patterns:
            raise ConfigurationError("sweep has no no_delay baseline")
        return sweep.row(NO_DELAY)


class RobustAverageSelector(SelectionStrategy):
    """The paper's strategy: lowest mean row-normalized runtime across patterns.

    ``exclude`` removes rows from the average — e.g. a traced application
    scenario, excluded to show the strategy works without application
    knowledge (the paper's "Avg (excl. FT-Sce.)").
    """

    name = "robust_average"

    def __init__(self, exclude: tuple[str, ...] = ()) -> None:
        self.exclude = tuple(exclude)

    def score(self, sweep: SweepResult) -> dict[str, float]:
        return average_normalized(_table(sweep), exclude=self.exclude)


class MinMaxSelector(SelectionStrategy):
    """Lowest worst-case row-normalized runtime (most conservative)."""

    name = "minmax"

    def __init__(self, exclude: tuple[str, ...] = ()) -> None:
        self.exclude = tuple(exclude)

    def score(self, sweep: SweepResult) -> dict[str, float]:
        table = {p: r for p, r in _table(sweep).items() if p not in self.exclude}
        normalized = normalize_rows(table)
        algorithms = sweep.algorithms
        return {
            algo: float(np.max([normalized[p][algo] for p in normalized]))
            for algo in algorithms
        }


class OracleSelector(SelectionStrategy):
    """Fastest under one specific (typically traced) pattern."""

    name = "oracle"

    def __init__(self, pattern_name: str) -> None:
        self.pattern_name = pattern_name

    def score(self, sweep: SweepResult) -> dict[str, float]:
        if self.pattern_name not in sweep.patterns:
            raise ConfigurationError(
                f"sweep has no pattern {self.pattern_name!r}; has {sweep.patterns}"
            )
        return sweep.row(self.pattern_name)
