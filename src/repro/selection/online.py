"""Online arrival-pattern detection and adaptive per-call selection.

The paper's strategy is *static*: benchmark once, pick the most robust
algorithm.  Its related work (Proficz's online arrival-pattern detection)
motivates the obvious extension implemented here: observe the arrival
pattern of each collective call at runtime and switch algorithms on the
fly.

Components:

* :class:`PatternClassifier` — matches an observed per-rank delay vector to
  the nearest Fig. 3 shape (cosine similarity on mean-centred profiles),
  falling back to ``no_delay`` when the spread is negligible.
* :class:`AdaptiveSelector` — holds a per-pattern best-algorithm table
  (built from a :class:`~repro.bench.results.SweepResult`) and serves picks
  conditioned on the most recently classified pattern.
* :func:`run_adaptive_app` — an FT-like loop in which every rank allgathers
  an 8-byte arrival timestamp after each collective (the realistic
  measurement cost of online detection), classifies the pattern, and every
  rank deterministically switches to the table's pick for the next call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import ConfigurationError
from repro.bench.results import SweepResult
from repro.collectives import CollArgs, make_input, run_collective
from repro.patterns.shapes import NO_DELAY, PATTERN_SHAPES
from repro.sim.mpi import run_processes
from repro.sim.network import NetworkParams
from repro.sim.noise import NoiseModel
from repro.sim.platform import Platform
from repro.utils.seeding import spawn_rng


class PatternClassifier:
    """Nearest-shape classification of an observed per-rank delay vector."""

    def __init__(self, num_ranks: int, min_spread: float = 1e-6, seed: int = 0) -> None:
        if num_ranks <= 0:
            raise ConfigurationError("num_ranks must be positive")
        self.num_ranks = num_ranks
        self.min_spread = min_spread
        rng = spawn_rng(seed, "classifier")
        self._templates: dict[str, np.ndarray] = {}
        for name, fn in PATTERN_SHAPES.items():
            template = fn(num_ranks, rng).astype(float)
            centred = template - template.mean()
            norm = np.linalg.norm(centred)
            if norm > 0:
                self._templates[name] = centred / norm

    def classify(self, delays: np.ndarray) -> tuple[str, float]:
        """Return ``(shape_name, magnitude)`` for an observed delay vector."""
        delays = np.asarray(delays, dtype=float)
        if delays.shape != (self.num_ranks,):
            raise ConfigurationError(
                f"expected {self.num_ranks} delays, got shape {delays.shape}"
            )
        if not np.all(np.isfinite(delays)):
            raise ConfigurationError(
                "delay vector contains non-finite values (NaN or inf)"
            )
        spread = float(delays.max() - delays.min())
        # min_spread floor also covers the single-rank case (spread is
        # always 0 with one rank) and the no-templates case (every centred
        # single-element template has zero norm, so none were kept).
        if spread < self.min_spread or not self._templates:
            return NO_DELAY, spread
        centred = delays - delays.mean()
        norm = np.linalg.norm(centred)
        if norm == 0:
            return NO_DELAY, spread
        unit = centred / norm
        scores = {
            name: float(unit @ template) for name, template in self._templates.items()
        }
        return max(scores, key=scores.get), spread


@dataclass
class AdaptiveSelector:
    """Per-pattern best-algorithm table with a default fallback."""

    table: dict[str, str]
    default: str
    classifier: PatternClassifier
    history: list[str] = field(default_factory=list)

    @classmethod
    def from_sweep(cls, sweep: SweepResult, num_ranks: int, seed: int = 0
                   ) -> "AdaptiveSelector":
        table = {pattern: sweep.best_algorithm(pattern) for pattern in sweep.patterns}
        default = table.get(NO_DELAY, next(iter(table.values())))
        return cls(table=table, default=default,
                   classifier=PatternClassifier(num_ranks, seed=seed))

    def pick(self, observed_delays: np.ndarray | None) -> str:
        """Algorithm for the next call given the last call's delay vector."""
        if observed_delays is None:
            choice = self.default
        else:
            shape, _mag = self.classifier.classify(observed_delays)
            choice = self.table.get(shape, self.default)
        self.history.append(choice)
        return choice


@dataclass
class AdaptiveRunResult:
    runtime: float
    picks: list[str]

    @property
    def switches(self) -> int:
        return sum(a != b for a, b in zip(self.picks, self.picks[1:]))


def run_adaptive_app(
    platform: Platform,
    selector: AdaptiveSelector,
    collective: str = "alltoall",
    msg_bytes: float = 32768.0,
    iterations: int = 20,
    compute_per_iteration: float = 1.2e-3,
    count: int = 64,
    params: NetworkParams | None = None,
    noise: NoiseModel | None = None,
    extra_delay: Callable[[int, int], float] | None = None,
    fixed_algorithm: str | None = None,
) -> AdaptiveRunResult:
    """Run an FT-like loop with per-call adaptive algorithm selection.

    ``extra_delay(iteration, rank)`` injects controlled per-call imbalance
    on top of the noise model (to script pattern phase changes).  Passing
    ``fixed_algorithm`` disables adaptation — the static baseline with the
    same measurement overhead, for a fair comparison.
    """
    p = platform.num_ranks
    args = CollArgs(count=count, msg_bytes=msg_bytes)
    probe_args = CollArgs(count=1, msg_bytes=8.0, tag=args.tag + 7)
    inputs = [make_input(collective, r, p, count) for r in range(p)]
    picks: list[str] = []

    def prog(ctx):
        me = ctx.rank
        observed: np.ndarray | None = None
        yield from ctx.barrier()
        start = ctx.time()
        for it in range(iterations):
            yield ctx.compute(compute_per_iteration)
            if extra_delay is not None:
                penalty = extra_delay(it, me)
                if penalty > 0:
                    yield ctx.sleep(penalty)
            algo = fixed_algorithm or selector.pick(observed)
            if me == 0:
                picks.append(algo)
            arrival = ctx.time()
            yield from run_collective(ctx, collective, algo, args, inputs[me])
            # Online detection: allgather the 8-byte arrival timestamps.
            gathered = yield from run_collective(
                ctx, "allgather", "recursive_doubling", probe_args,
                np.array([arrival]),
            )
            delays = gathered[:, 0]
            observed = delays - delays.min()
        return ctx.time() - start

    run = run_processes(platform, prog, params=params, noise=noise)
    # All ranks pick deterministically from the same observation; rank 0's
    # record is authoritative.  Clear shared-selector history duplication.
    selector.history = list(picks) if fixed_algorithm is None else []
    return AdaptiveRunResult(
        runtime=float(max(run.rank_results)),
        picks=picks if fixed_algorithm is None else [fixed_algorithm] * iterations,
    )


__all__ = [
    "PatternClassifier",
    "AdaptiveSelector",
    "AdaptiveRunResult",
    "run_adaptive_app",
]
