"""Selection tables: the tuned decision logic produced by a strategy.

A :class:`SelectionTable` maps ``(collective, comm_size, msg_bytes)`` to an
algorithm name, with nearest-below message-size bucketing — the same
shape as Open MPI's ``coll_tuned`` dynamic rules.
"""

from __future__ import annotations

import json
from bisect import bisect_right
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ConfigurationError
from repro.bench.results import SweepResult
from repro.selection.strategies import SelectionStrategy


@dataclass
class SelectionTable:
    """Decision table built from sweeps by one strategy."""

    strategy_name: str = ""
    # (collective, comm_size) -> sorted list of (msg_bytes, algorithm)
    _rules: dict[tuple[str, int], list[tuple[float, str]]] = field(default_factory=dict)

    def add_rule(self, collective: str, comm_size: int, msg_bytes: float,
                 algorithm: str) -> None:
        if comm_size <= 0 or msg_bytes < 0:
            raise ConfigurationError("invalid rule coordinates")
        rules = self._rules.setdefault((collective, comm_size), [])
        rules[:] = [(m, a) for m, a in rules if m != msg_bytes]
        rules.append((float(msg_bytes), algorithm))
        rules.sort()

    def add_sweep(self, sweep: SweepResult, strategy: SelectionStrategy) -> str:
        """Apply ``strategy`` to one sweep and record the winner; returns it."""
        if not self.strategy_name:
            self.strategy_name = strategy.name
        winner = strategy.select(sweep)
        self.add_rule(sweep.collective, sweep.num_ranks, sweep.msg_bytes, winner)
        return winner

    def lookup(self, collective: str, comm_size: int, msg_bytes: float,
               exact_comm_size: bool = False) -> str:
        """Algorithm for the nearest rule at or below ``msg_bytes``.

        Communicator sizes bucket like Open MPI's dynamic rules: the rule
        set of the largest tuned comm size **at or below** ``comm_size``
        applies (falling back to the smallest tuned size when undershooting
        every bucket).  Pass ``exact_comm_size=True`` to demand an exact
        match instead.  Message sizes fall back to the smallest-size rule
        when undershooting every bucket.  Raises when the collective has no
        rules at all.
        """
        rules = self._rules.get((collective, comm_size))
        if rules is None and not exact_comm_size:
            tuned_sizes = self.comm_sizes(collective)
            if tuned_sizes:
                idx = bisect_right(tuned_sizes, comm_size) - 1
                nearest = tuned_sizes[max(idx, 0)]
                rules = self._rules.get((collective, nearest))
        if not rules:
            raise ConfigurationError(
                f"no rules for {collective!r} at comm_size={comm_size}"
            )
        sizes = [m for m, _ in rules]
        idx = bisect_right(sizes, msg_bytes) - 1
        return rules[max(idx, 0)][1]

    def comm_sizes(self, collective: str) -> list[int]:
        return sorted(size for (coll, size) in self._rules if coll == collective)

    def rules_for(self, collective: str, comm_size: int) -> list[tuple[float, str]]:
        return list(self._rules.get((collective, comm_size), []))

    @property
    def collectives(self) -> list[str]:
        return sorted({coll for (coll, _size) in self._rules})

    # -- persistence ----------------------------------------------------- #

    def to_dict(self) -> dict:
        return {
            "strategy": self.strategy_name,
            "rules": [
                {"collective": coll, "comm_size": size, "msg_bytes": m, "algorithm": a}
                for (coll, size), rules in sorted(self._rules.items())
                for m, a in rules
            ],
        }

    def save_json(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load_json(cls, path: str | Path) -> "SelectionTable":
        data = json.loads(Path(path).read_text())
        table = cls(strategy_name=data.get("strategy", ""))
        for rule in data.get("rules", []):
            table.add_rule(rule["collective"], int(rule["comm_size"]),
                           float(rule["msg_bytes"]), rule["algorithm"])
        return table
