"""Selection tables: the tuned decision logic produced by a strategy.

A :class:`SelectionTable` maps ``(collective, comm_size, msg_bytes)`` to an
algorithm name, with nearest-below message-size bucketing — the same
shape as Open MPI's ``coll_tuned`` dynamic rules.
"""

from __future__ import annotations

import json
from bisect import bisect_right
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ConfigurationError
from repro.bench.results import SweepResult
from repro.selection.strategies import SelectionStrategy

#: Serialization format version written by :meth:`SelectionTable.to_dict`.
#: Bump when the JSON layout changes incompatibly; :meth:`from_dict` accepts
#: files without a version (the pre-versioned legacy layout) and rejects
#: versions it does not know.
TABLE_FORMAT_VERSION = 1

#: Exact key set of one serialized rule entry.
_RULE_KEYS = frozenset({"collective", "comm_size", "msg_bytes", "algorithm"})


def _require_number(value, path: str) -> float:
    """A finite JSON number (bools are not numbers here)."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigurationError(
            f"{path}: expected a number, got {type(value).__name__} {value!r}"
        )
    return float(value)


@dataclass
class SelectionTable:
    """Decision table built from sweeps by one strategy."""

    strategy_name: str = ""
    # (collective, comm_size) -> sorted list of (msg_bytes, algorithm)
    _rules: dict[tuple[str, int], list[tuple[float, str]]] = field(default_factory=dict)
    # collective -> sorted comm sizes that actually hold rules; rebuilt
    # lazily by comm_sizes() so bucketed lookups don't rescan every key.
    _comm_size_cache: dict[str, list[int]] = field(
        default_factory=dict, repr=False, compare=False)

    def add_rule(self, collective: str, comm_size: int, msg_bytes: float,
                 algorithm: str) -> None:
        if comm_size <= 0 or msg_bytes < 0:
            raise ConfigurationError("invalid rule coordinates")
        rules = self._rules.setdefault((collective, comm_size), [])
        rules[:] = [(m, a) for m, a in rules if m != msg_bytes]
        rules.append((float(msg_bytes), algorithm))
        rules.sort()
        self._comm_size_cache.pop(collective, None)

    def add_sweep(self, sweep: SweepResult, strategy: SelectionStrategy) -> str:
        """Apply ``strategy`` to one sweep and record the winner; returns it."""
        if not self.strategy_name:
            self.strategy_name = strategy.name
        winner = strategy.select(sweep)
        self.add_rule(sweep.collective, sweep.num_ranks, sweep.msg_bytes, winner)
        return winner

    def lookup(self, collective: str, comm_size: int, msg_bytes: float,
               exact_comm_size: bool = False) -> str:
        """Algorithm for the nearest rule at or below ``msg_bytes``.

        Communicator sizes bucket like Open MPI's dynamic rules: the rule
        set of the largest tuned comm size **at or below** ``comm_size``
        applies (falling back to the smallest tuned size when undershooting
        every bucket).  Pass ``exact_comm_size=True`` to demand an exact
        match instead.  Message sizes fall back to the smallest-size rule
        when undershooting every bucket.  Raises when the collective has no
        rules at all.
        """
        rules = self._rules.get((collective, comm_size))
        if not rules and not exact_comm_size:
            # `not rules` (not `rules is None`): an *empty* rule list
            # registered at the exact size must still fall through to the
            # nearest tuned bucket.
            tuned_sizes = self._tuned_sizes(collective)
            if tuned_sizes:
                idx = bisect_right(tuned_sizes, comm_size) - 1
                nearest = tuned_sizes[max(idx, 0)]
                rules = self._rules.get((collective, nearest))
        if not rules:
            raise ConfigurationError(
                f"no rules for {collective!r} at comm_size={comm_size}"
            )
        sizes = [m for m, _ in rules]
        idx = bisect_right(sizes, msg_bytes) - 1
        return rules[max(idx, 0)][1]

    def _tuned_sizes(self, collective: str) -> list[int]:
        """Sorted comm sizes with at least one rule, cached per collective."""
        cached = self._comm_size_cache.get(collective)
        if cached is None:
            cached = sorted(size for (coll, size), rules in self._rules.items()
                            if coll == collective and rules)
            self._comm_size_cache[collective] = cached
        return cached

    def comm_sizes(self, collective: str) -> list[int]:
        return list(self._tuned_sizes(collective))

    def rules_for(self, collective: str, comm_size: int) -> list[tuple[float, str]]:
        return list(self._rules.get((collective, comm_size), []))

    def iter_rules(self):
        """Every rule as ``(collective, comm_size, msg_bytes, algorithm)``,
        sorted — the canonical flat form used by exports and the store."""
        for (coll, size), rules in sorted(self._rules.items()):
            for msg_bytes, algorithm in rules:
                yield coll, size, msg_bytes, algorithm

    @property
    def collectives(self) -> list[str]:
        return sorted({coll for (coll, _size), rules in self._rules.items()
                       if rules})

    # -- persistence ----------------------------------------------------- #

    def to_dict(self) -> dict:
        return {
            "version": TABLE_FORMAT_VERSION,
            "strategy": self.strategy_name,
            "rules": [
                {"collective": coll, "comm_size": size, "msg_bytes": m, "algorithm": a}
                for coll, size, m, a in self.iter_rules()
            ],
        }

    @classmethod
    def from_dict(cls, data: dict, source: str = "selection table") -> "SelectionTable":
        """Rebuild a table from :meth:`to_dict` output, validating the schema.

        Malformed input raises :class:`ConfigurationError` naming the
        offending path (``rules[3].msg_bytes``) instead of leaking a
        ``KeyError``/``TypeError`` from deep inside.  Files without a
        ``version`` field (the legacy layout) still load.
        """
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"{source}: top level must be an object, "
                f"got {type(data).__name__}"
            )
        unknown = set(data) - {"version", "strategy", "rules"}
        if unknown:
            raise ConfigurationError(
                f"{source}: unknown keys {sorted(unknown)}"
            )
        version = data.get("version", TABLE_FORMAT_VERSION)
        if isinstance(version, bool) or not isinstance(version, int) \
                or not 1 <= version <= TABLE_FORMAT_VERSION:
            raise ConfigurationError(
                f"{source}.version: expected an integer in "
                f"[1, {TABLE_FORMAT_VERSION}], got {version!r}"
            )
        strategy = data.get("strategy", "")
        if not isinstance(strategy, str):
            raise ConfigurationError(
                f"{source}.strategy: expected a string, got {strategy!r}"
            )
        rules = data.get("rules", [])
        if not isinstance(rules, list):
            raise ConfigurationError(
                f"{source}.rules: expected a list, got {type(rules).__name__}"
            )
        table = cls(strategy_name=strategy)
        for i, rule in enumerate(rules):
            path = f"{source}.rules[{i}]"
            if not isinstance(rule, dict):
                raise ConfigurationError(
                    f"{path}: expected an object, got {type(rule).__name__}"
                )
            missing = _RULE_KEYS - set(rule)
            if missing:
                raise ConfigurationError(f"{path}: missing {sorted(missing)}")
            unknown = set(rule) - _RULE_KEYS
            if unknown:
                raise ConfigurationError(f"{path}: unknown keys {sorted(unknown)}")
            for key in ("collective", "algorithm"):
                if not isinstance(rule[key], str) or not rule[key]:
                    raise ConfigurationError(
                        f"{path}.{key}: expected a non-empty string, "
                        f"got {rule[key]!r}"
                    )
            comm_size = _require_number(rule["comm_size"], f"{path}.comm_size")
            if comm_size != int(comm_size):
                raise ConfigurationError(
                    f"{path}.comm_size: expected an integer, got {comm_size!r}"
                )
            msg_bytes = _require_number(rule["msg_bytes"], f"{path}.msg_bytes")
            try:
                table.add_rule(rule["collective"], int(comm_size), msg_bytes,
                               rule["algorithm"])
            except ConfigurationError as exc:
                raise ConfigurationError(f"{path}: {exc}") from None
        return table

    def save_json(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load_json(cls, path: str | Path) -> "SelectionTable":
        path = Path(path)
        try:
            data = json.loads(path.read_text())
        except ValueError as exc:
            raise ConfigurationError(f"{path}: not valid JSON: {exc}") from None
        return cls.from_dict(data, source=str(path))

    # -- store round-trips ------------------------------------------------ #

    def to_store(self, store) -> int:
        """Persist every rule into a :class:`~repro.store.TuningStore`
        (or a path to one); returns the number of rules written."""
        from repro.store import open_store

        store, owned = open_store(store)
        try:
            return store.store_table(self)
        finally:
            if owned:
                store.close()

    @classmethod
    def from_store(cls, store, strategy: str | None = None) -> "SelectionTable":
        """Rebuild the table stored under ``strategy`` (optional when the
        store holds exactly one) from a :class:`~repro.store.TuningStore`
        or a path to one."""
        from repro.store import open_store

        store, owned = open_store(store)
        try:
            return store.load_table(strategy)
        finally:
            if owned:
                store.close()
