"""User-facing simulated MPI layer.

A simulated MPI program is a Python *generator function* taking a
:class:`ProcContext` and yielding blocking conditions (produced by the
context's methods).  Blocking convenience wrappers (``send``, ``recv``,
``barrier``) are sub-generators used with ``yield from``; they return their
result via the generator return value::

    def program(ctx: ProcContext):
        if ctx.rank == 0:
            yield from ctx.send(1, nbytes=8, payload=np.arange(1))
        else:
            req = yield from ctx.recv(0)
            print(req.payload)
        yield from ctx.barrier()

    result = run_processes(platform, program)

Time handling: :meth:`ProcContext.time` returns the *true* simulated time of
the calling rank.  Experiments that need realistic imperfect clocks layer
:mod:`repro.clocks` on top.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Iterable, Iterator, Sequence

import numpy as np

from repro.errors import ProtocolError
from repro.obs.context import current as _obs_current
from repro.sim.engine import ANY_SOURCE, ANY_TAG, Engine, EngineStats, Request
from repro.sim.network import NetworkModel, NetworkParams
from repro.sim.noise import NoiseModel
from repro.sim.platform import Platform

# Tag blocks reserved per subsystem so concurrent phases never cross-match.
TAG_P2P = 0
TAG_BARRIER = 1_000
TAG_COLLECTIVE = 10_000
TAG_CLOCK = 2_000
TAG_TRACE = 3_000


class ProcContext:
    """Handle through which a simulated process interacts with the engine.

    One context exists per rank.  Methods starting with ``i`` are
    non-blocking and return a :class:`Request`; the generator helpers
    (``send``, ``recv``, ``barrier``, ...) block via ``yield from``.
    """

    __slots__ = ("engine", "rank", "size", "noise", "_proc", "_fiber", "user")

    def __init__(self, engine: Engine, rank: int, noise: NoiseModel | None = None,
                 fiber=None) -> None:
        self.engine = engine
        self.rank = rank
        self.size = engine.num_procs
        self.noise = noise
        self._proc = engine.procs[rank]
        # The execution strand this context posts from (main fiber unless
        # this context was created by start_fiber).
        self._fiber = fiber if fiber is not None else self._proc.main
        #: Free slot for experiment harnesses to attach per-rank state.
        self.user: dict[str, Any] = {}

    # -- time ----------------------------------------------------------- #

    def time(self) -> float:
        """True simulated time at this rank's fiber (perfect global clock)."""
        return self._fiber.now

    # -- fibers (concurrent progress on the same rank) ------------------- #

    def start_fiber(self, fn: "Callable[[ProcContext], Iterator[tuple]]"):
        """Start ``fn`` as a concurrently progressing fiber of this rank.

        The fiber gets its own :class:`ProcContext` (same rank, own clock
        starting now) and shares the rank's NIC ports and matching queues —
        the model of a hardware-offloaded/asynchronously progressing
        activity such as a non-blocking collective.  The returned handle is
        waitable: ``yield ctx.waitall(handle)`` joins it and
        ``handle.result`` carries the fiber's return value.

        Fibers of one rank run on independent clocks; if two fibers of the
        same rank exchange messages with the same peers, give them distinct
        tags.
        """
        fiber = self.engine.spawn_fiber(self.rank, None, self._fiber.now)
        child_ctx = ProcContext(self.engine, self.rank, self.noise, fiber=fiber)
        fiber.gen = fn(child_ctx)
        return fiber

    def sleep(self, seconds: float) -> tuple:
        """Blocking condition: advance this rank's clock by ``seconds``."""
        return ("sleep", seconds)

    def wait_until(self, when: float) -> tuple:
        """Blocking condition: advance this rank's clock to ``when``."""
        return ("until", when)

    def compute(self, seconds: float) -> tuple:
        """Blocking condition: perform ``seconds`` of work, noise-perturbed.

        With no noise model attached this is identical to :meth:`sleep`.
        """
        if self.noise is not None:
            seconds = self.noise.perturb(self.rank, self._proc.now, seconds)
        return ("sleep", seconds)

    # -- point-to-point, non-blocking ------------------------------------ #

    def isend(
        self,
        dst: int,
        nbytes: int,
        tag: int = TAG_P2P,
        payload: Any = None,
        sync: bool = False,
    ) -> Request:
        """Post a non-blocking send.  ndarray payloads are snapshotted.

        ``sync=True`` gives ``MPI_Issend`` semantics (always rendezvous).
        """
        if isinstance(payload, np.ndarray):
            payload = payload.copy()
        return self.engine.post_isend(
            self.rank, dst, nbytes, tag, payload, sync=sync, fiber=self._fiber
        )

    def irecv(self, src: int, tag: int = TAG_P2P, nbytes: int = 0) -> Request:
        """Post a non-blocking receive (``src``/``tag`` may be wildcards)."""
        return self.engine.post_irecv(self.rank, src, tag, nbytes, fiber=self._fiber)

    def waitall(self, *requests: Request | Iterable[Request]) -> tuple:
        """Blocking condition: wait for every given request (or fiber handle)."""
        flat: list[Request] = []
        for item in requests:
            if isinstance(item, Request) or not hasattr(item, "__iter__"):
                flat.append(item)  # request or fiber handle
            else:
                flat.extend(item)
        if not flat:
            raise ProtocolError("waitall with no requests")
        return ("wait", flat)

    wait = waitall

    def waitany(self, *requests: Request | Iterable[Request]) -> tuple:
        """Blocking condition: wait until *one* request completes.

        Yielding this returns the index (within the flattened list) of the
        earliest-completing request::

            index = yield ctx.waitany(reqs)
        """
        flat: list[Request] = []
        for item in requests:
            if isinstance(item, Request) or not hasattr(item, "__iter__"):
                flat.append(item)  # request or fiber handle
            else:
                flat.extend(item)
        if not flat:
            raise ProtocolError("waitany with no requests")
        return ("wait_any", flat)

    # -- point-to-point, blocking helpers -------------------------------- #

    def send(
        self, dst: int, nbytes: int, tag: int = TAG_P2P, payload: Any = None
    ) -> Generator[tuple, None, Request]:
        req = self.isend(dst, nbytes, tag, payload)
        yield self.waitall(req)
        return req

    def recv(
        self, src: int, tag: int = TAG_P2P, nbytes: int = 0
    ) -> Generator[tuple, None, Request]:
        req = self.irecv(src, tag, nbytes)
        yield self.waitall(req)
        return req

    def sendrecv(
        self,
        dst: int,
        src: int,
        nbytes: int,
        recv_nbytes: int | None = None,
        tag: int = TAG_P2P,
        payload: Any = None,
    ) -> Generator[tuple, None, Request]:
        """Simultaneous send+recv; returns the receive request."""
        sreq = self.isend(dst, nbytes, tag, payload)
        rreq = self.irecv(src, tag, recv_nbytes if recv_nbytes is not None else nbytes)
        yield self.waitall(sreq, rreq)
        return rreq

    # -- built-in dissemination barrier ---------------------------------- #

    def barrier(self, tag: int = TAG_BARRIER) -> Generator[tuple, None, None]:
        """Dissemination barrier over all ranks (log2(p) rounds).

        This is the harness-internal barrier; the full set of MPI barrier
        *algorithms* lives in :mod:`repro.collectives.barrier`.
        """
        p, me = self.size, self.rank
        if p == 1:
            return
        distance = 1
        round_no = 0
        while distance < p:
            dst = (me + distance) % p
            src = (me - distance) % p
            yield from self.sendrecv(dst, src, nbytes=1, tag=tag + round_no)
            distance *= 2
            round_no += 1


@dataclass
class RunResult:
    """Outcome of a completed simulation job.

    ``engine_stats`` carries the engine's hot-path counters (events by kind,
    match fast/slow-path hits, peak heap size, wall-clock events/s); see
    :class:`repro.sim.engine.EngineStats`.
    """

    final_time: float
    rank_times: list[float]
    rank_results: list[Any]
    events_processed: int
    engine_stats: EngineStats | None = None


ProcessFn = Callable[[ProcContext], Iterator[tuple]]


def build_engine(
    platform: Platform,
    params: NetworkParams | None = None,
    noise: NoiseModel | None = None,
    num_ranks: int | None = None,
    flow=None,
) -> tuple[Engine, list[ProcContext]]:
    """Create an engine plus one :class:`ProcContext` per rank.

    ``num_ranks`` may restrict the job to the first ranks of the platform
    (like an under-subscribed ``mpirun -np``).  ``flow`` is an optional
    :class:`repro.sim.flow.FlowConfig`; a non-exact mode attaches a
    :class:`~repro.sim.flow.FlowRuntime` enabling the flow-level fast path
    for collectives with registered phase descriptors.
    """
    network = NetworkModel(platform, params or NetworkParams())
    p = platform.num_ranks if num_ranks is None else num_ranks
    if not (0 < p <= platform.num_ranks):
        raise ProtocolError(
            f"num_ranks={num_ranks} outside 1..{platform.num_ranks} for {platform.name}"
        )
    engine = Engine(p, network)
    if flow is not None and flow.mode != "exact":
        from repro.sim.flow import FlowRuntime

        engine.flow_runtime = FlowRuntime(engine, flow)
    contexts = [ProcContext(engine, rank, noise) for rank in range(p)]
    return engine, contexts


def run_processes(
    platform: Platform,
    fn: ProcessFn | Sequence[ProcessFn],
    params: NetworkParams | None = None,
    noise: NoiseModel | None = None,
    num_ranks: int | None = None,
    flow=None,
) -> RunResult:
    """Run one program (or a per-rank list of programs) to completion."""
    engine, contexts = build_engine(platform, params, noise, num_ranks, flow)
    for rank, ctx in enumerate(contexts):
        rank_fn = fn[rank] if isinstance(fn, (list, tuple)) else fn
        engine.set_process(rank, rank_fn(ctx))
    with _obs_current().wall_span("sim.run", track="sim",
                                  args={"ranks": engine.num_procs}):
        final = engine.run()
    return RunResult(
        final_time=final,
        rank_times=[p.now for p in engine.procs],
        rank_results=[p.result for p in engine.procs],
        events_processed=engine.events_processed,
        engine_stats=engine.stats,
    )


__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "EngineStats",
    "ProcContext",
    "RunResult",
    "build_engine",
    "run_processes",
    "TAG_P2P",
    "TAG_BARRIER",
    "TAG_COLLECTIVE",
    "TAG_CLOCK",
    "TAG_TRACE",
]
