"""Discrete-event simulation substrate (SimGrid/SMPI analogue).

The :mod:`repro.sim` package provides everything needed to run MPI-style
programs on a simulated cluster:

* :mod:`repro.sim.engine` — conservative discrete-event core; each simulated
  MPI process is a Python generator resumed by the engine in timestamp order.
* :mod:`repro.sim.network` — LogGP-flavoured message cost model with eager
  and rendezvous protocols and per-port serialization.
* :mod:`repro.sim.platform` — cluster topology descriptions and the machine
  presets used throughout the paper reproduction.
* :mod:`repro.sim.mpi` — the user-facing process context (`isend`, `irecv`,
  `wait`, `sleep`, ...) and the job runner.
* :mod:`repro.sim.noise` — system-noise models that perturb compute phases.
"""

from repro.sim.engine import Engine, Request
from repro.sim.network import NetworkModel, NetworkParams
from repro.sim.platform import Platform, MACHINES, get_machine
from repro.sim.mpi import ProcContext, run_processes
from repro.sim.noise import NoiseModel, NoiseProfile

__all__ = [
    "Engine",
    "Request",
    "NetworkModel",
    "NetworkParams",
    "Platform",
    "MACHINES",
    "get_machine",
    "ProcContext",
    "run_processes",
    "NoiseModel",
    "NoiseProfile",
]
