"""Flow-level fast path: collapse regular bulk phases into vectorized replays.

The exact engine (:mod:`repro.sim.engine`) prices every message as its own
discrete event — perfect fidelity, but a 16k-rank linear alltoall is ~256M
messages and hopeless at one heap pop per message.  This module adds the
escape hatch: collectives *declare* the regular bulk phases of their
schedules via :func:`phase_descriptor` plans, and when every rank of a
communicator reaches such a phase together (arrival spread within the
configured tolerance), the engine collapses the whole phase into **one
event per rank** — a :class:`FlowGate` that blocks all ranks, replays the
phase's port-claim recurrences with vectorized numpy, writes the port state
back, and resumes every rank at its computed exit time.

Exactness contract
------------------
The replay is not an approximation of the engine's cost model — it *is* the
cost model, evaluated in closed form:

* every float operation of the exact engine (sequential ``+= overhead``
  clock advances, ``max(ready, port_free) + tx_time`` port claims, eager
  and rendezvous completion rules) is replicated operation-for-operation,
  in the same order, so results are **bit-identical** to exact simulation
  whenever the flow path engages (see ``tests/test_engine_parity.py``);
* ``np.add.accumulate`` on float64 is a strict left fold, which makes
  saturated port chains evaluable in O(resets) vectorized passes
  (:func:`_seq_chain`) without changing a single rounding step.

The provable-exactness domain splits on port ownership:

* *Stepped* plans (lockstep exchange rounds) on **private-port** platforms
  (per-rank NICs, a single node, or one rank per node) are bit-exact at
  **any** entry skew: every port has a single owning rank that claims it
  in its own program order, and the engine's expected- and unexpected-path
  completion formulas coincide, so event interleaving cannot change the
  arithmetic.
* On platforms with ranks *sharing* node ports, and for the *linear* plan
  everywhere, exactness additionally needs **aligned entries**: with
  skewed entries an early rank's phase overlaps a late rank's previous
  phase in simulated time, and the engine interleaves their claims on the
  shared port while the gate serializes phases (linear plans further
  reorder unexpected-path extraction claims).  Stepped plans on such
  platforms moreover engage only when each node port has a **single
  claiming rank** for the whole phase (ring schedules qualify; strided
  exchanges like pairwise or recursive doubling do not — several
  co-located ranks would contend for the node NIC, which the vectorized
  replay does not serialize).  Hybrid mode falls back or refuses these
  cases; forced ``flow`` mode runs them anyway as analytic approximations
  (see ``docs/performance.md``).

Dispatch rules (``hybrid`` mode)
--------------------------------
A collective call takes the flow path only when **all** of these hold,
otherwise it falls back to exact per-message simulation and bumps the
``flow.fallback_*`` counters:

* a phase descriptor is registered for ``(collective, algorithm)`` and
  returns a plan for these parameters (e.g. recursive doubling only for
  power-of-two communicators, ring allreduce only for ``count >= p``,
  linear alltoall only below the eager threshold);
* for linear plans, and for stepped plans on shared-port platforms: the
  declared arrival spread of the run's pattern is within
  ``FlowConfig.tolerance`` (default 0.0 — perfectly aligned phases), and
  the gate re-checks the *actual* entry spread at resolution, raising
  :class:`SimulationError` if the declaration was violated; stepped plans
  on private-port platforms are skew-exact and skip both checks;
* the platform is link-class uniform, unless the plan sets ``hetero_ok``
  (ring-structured and linear schedules keep single-owner port access on
  hetero platforms; pairwise/XOR schedules do not);
* the call happens on the rank's main fiber (overlapped fibers keep exact
  ordering semantics).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Sequence

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.obs.context import current as _obs_current
from repro.sim.engine import _EV_RESUME, Engine

ENGINE_MODES = ("exact", "hybrid", "flow")


@dataclass(frozen=True)
class FlowConfig:
    """How (and whether) the flow fast path engages for a run.

    Parameters
    ----------
    mode:
        ``"exact"`` — never; ``"hybrid"`` — where a plan exists *and* the
        declared arrival spread is within ``tolerance``; ``"flow"`` — on
        every planned phase regardless of skew (analytic approximation).
    tolerance:
        Maximum declared arrival spread (seconds) the hybrid dispatcher
        accepts.  0.0 (the default) admits only perfectly aligned phases,
        the regime where the replay is provably bit-identical.
    declared_spread:
        The arrival spread the harness *promises* for collective entries
        (``max(skew) - min(skew)`` of the pattern under a perfect clock).
        ``None`` means unknown (e.g. synced-clock mode) and disables the
        hybrid fast path entirely.
    payloads:
        When False, flow-path collectives return ``None`` instead of the
        reference result — scale benchmarks skip the O(p^2) payload work.
    """

    mode: str = "hybrid"
    tolerance: float = 0.0
    declared_spread: float | None = None
    payloads: bool = True

    def __post_init__(self) -> None:
        if self.mode not in ENGINE_MODES:
            raise ConfigurationError(
                f"unknown engine mode {self.mode!r}; expected one of {ENGINE_MODES}"
            )
        if self.tolerance < 0:
            raise ConfigurationError("flow tolerance must be non-negative")
        if self.declared_spread is not None and self.declared_spread < 0:
            raise ConfigurationError("declared_spread must be non-negative")


@dataclass(frozen=True)
class FlowPlan:
    """A collective schedule's declaration of one regular bulk phase.

    ``kind="stepped"`` describes a sequence of lockstep exchange rounds
    (every rank sends one message and receives one message per step, then
    waits on both): ``steps`` lazily yields ``(dst, src, sbytes)`` arrays
    per round, where ``dst[r]``/``src[r]`` are rank ``r``'s peers (mutually
    consistent permutations: ``dst[src[r]] == r``) and ``sbytes[r]`` the
    modeled wire bytes rank ``r`` sends.  Steps are generated lazily so an
    8k-rank plan costs O(p) memory, not O(p * steps).

    ``kind="linear"`` describes the post-everything-then-wait shape of
    ``alltoall/basic_linear``: ``p-1`` receives (ascending source, skipping
    self) then ``p-1`` sends to ``(rank+off) % p``, each of ``msg_bytes``
    eager bytes, one terminal waitall.

    ``hetero_ok`` asserts the schedule keeps single-owner access to every
    shared node port on multi-core nodes (at most one rank per node sends
    inter-node per step); plans without it only run on link-class-uniform
    platforms.  ``est_messages`` is the total point-to-point message count
    the plan replaces — the basis of the ``flow.fallback_messages`` and
    ``flow.messages_collapsed`` counters.
    """

    kind: str
    collective: str
    algorithm: str
    hetero_ok: bool
    est_messages: int
    num_steps: int = 0
    msg_bytes: float = 0.0
    steps: Callable[[], Iterator[tuple]] | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in ("stepped", "linear"):
            raise ConfigurationError(f"unknown flow plan kind {self.kind!r}")
        if self.kind == "stepped" and self.steps is None:
            raise ConfigurationError("stepped flow plans need a steps() generator")


# --------------------------------------------------------------------- #
# Phase-descriptor registry
# --------------------------------------------------------------------- #

_DESCRIPTORS: dict[tuple[str, str], Callable] = {}


def phase_descriptor(collective: str, algorithm: str):
    """Register ``fn(p, args, network) -> FlowPlan | None`` for a schedule.

    The descriptor runs per collective call and must be cheap (O(p) at
    most); returning ``None`` means the schedule is not phase-regular for
    these parameters and the exact engine handles the call.
    """

    def deco(fn):
        _DESCRIPTORS[(collective, algorithm)] = fn
        return fn

    return deco


def get_descriptor(collective: str, algorithm: str):
    """The registered phase descriptor, or ``None``."""
    return _DESCRIPTORS.get((collective, algorithm))


# --------------------------------------------------------------------- #
# Vectorized network tables and port state
# --------------------------------------------------------------------- #


class _NetTables:
    """Link-class lookup arrays for the engine's cost model.

    Class indices mirror the exact engine: 1 = intra-node, 2 = inter-node
    same group, 3 = cross-group (self-messages never occur in bulk phases).
    """

    __slots__ = (
        "p", "node_of", "group_of", "lat", "inv_bw", "shared", "rx_ser",
        "o", "ro", "eager_max", "uniform", "multi_group", "private_ports",
    )

    def __init__(self, engine: Engine) -> None:
        net = engine.network
        p = engine.num_procs
        self.p = p
        self.node_of = np.asarray(net.node_of[:p], dtype=np.int64)
        self.group_of = np.asarray(net.group_of[:p], dtype=np.int64)
        self.lat = np.array([0.0, net.intra_lat, net.inter_lat, net.group_lat])
        self.inv_bw = np.array(
            [0.0, net.intra_inv_bw, net.inter_inv_bw, net.group_inv_bw]
        )
        self.shared = bool(net.shared_node_nic)
        self.rx_ser = bool(net.rx_serialization)
        self.o = net.send_overhead
        self.ro = net.recv_overhead
        self.eager_max = net.eager_max
        self.multi_group = bool(np.unique(self.group_of).size > 1) and (
            net.group_lat != net.inter_lat or net.group_inv_bw != net.inter_inv_bw
        )
        # Link-class uniformity: every possible message shares one (latency,
        # bandwidth) class.  True when all ranks share a node (all intra) or
        # every rank owns its node (all inter) with no distinct group tier.
        nodes_used = int(np.unique(self.node_of).size)
        if nodes_used == 1:
            self.uniform = True
        elif nodes_used == p:
            self.uniform = not self.multi_group
        else:
            self.uniform = False
        # Private ports: no port is claimed by more than one rank — either
        # NICs are per-rank, all traffic is intra-node (node ports unused),
        # or each node hosts a single rank.  This is the domain where
        # stepped replays stay bit-exact under arbitrary entry skew.
        self.private_ports = (
            not self.shared
            or nodes_used == 1
            or int(np.bincount(self.node_of).max()) == 1
        )

    def classes(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        """Per-element link class for messages ``src[i] -> dst[i]``."""
        node = self.node_of
        same_node = node[src] == node[dst]
        if self.multi_group:
            grp = self.group_of
            return np.where(same_node, 1, np.where(grp[src] == grp[dst], 2, 3))
        return np.where(same_node, 1, 2)


class _PortState:
    """Snapshot of every injection/extraction port's ``free`` time."""

    __slots__ = ("tx", "rx", "node_tx", "node_rx")

    def __init__(self, engine: Engine) -> None:
        self.tx = np.array([proc.tx_free for proc in engine.procs])
        self.rx = np.array([proc.rx_free for proc in engine.procs])
        self.node_tx = np.array(engine._node_tx_free)
        self.node_rx = np.array(engine._node_rx_free)

    def write_back(self, engine: Engine) -> None:
        # Plain python floats keep the exact engine's hot path free of
        # numpy scalar overhead after the batch.
        for proc, v in zip(engine.procs, self.tx):
            proc.tx_free = float(v)
        for proc, v in zip(engine.procs, self.rx):
            proc.rx_free = float(v)
        engine._node_tx_free = [float(v) for v in self.node_tx]
        engine._node_rx_free = [float(v) for v in self.node_rx]


class _LinkAccum:
    """Per-batch fabric-traffic accumulator for the link recorder.

    The flow replay never materializes individual messages, so link
    recording aggregates instead: per ``(port, class, direction)`` it sums
    busy seconds, bytes, messages, and contention wait over the whole
    batch with :func:`np.bincount`, then :meth:`emit` writes one synthetic
    :meth:`~repro.obs.linkstats.LinkStatsRecorder.record_batch` interval
    per nonzero link.  Byte and message totals match the exact engine's
    per-message records exactly (integer-valued sums); busy/wait seconds
    can differ in the last ulp because the summation order differs.

    Keys pack the engine's port index space (ranks ``0..p-1``, node ports
    ``p + node``) with the link class: ``key = port * 4 + cls``.
    """

    __slots__ = ("p", "size", "busy", "nbytes", "wait", "msgs")

    def __init__(self, nt: _NetTables) -> None:
        self.p = nt.p
        num_nodes = int(nt.node_of.max()) + 1
        self.size = (nt.p + num_nodes) * 4
        # Index 0 = tx (injection), 1 = rx (extraction), as in linkstats.
        self.busy = np.zeros((2, self.size))
        self.nbytes = np.zeros((2, self.size))
        self.wait = np.zeros((2, self.size))
        self.msgs = np.zeros((2, self.size))

    def add(self, direction: int, ports, cls, busy, nbytes, wait) -> None:
        keys = np.asarray(ports, dtype=np.int64).ravel() * 4 + \
            np.asarray(cls, dtype=np.int64).ravel()

        def weights(x):
            x = np.asarray(x, dtype=float)
            return np.broadcast_to(x, keys.shape) if x.ndim == 0 else x.ravel()

        self.busy[direction] += np.bincount(keys, weights=weights(busy),
                                            minlength=self.size)
        self.nbytes[direction] += np.bincount(keys, weights=weights(nbytes),
                                              minlength=self.size)
        self.wait[direction] += np.bincount(keys, weights=weights(wait),
                                            minlength=self.size)
        self.msgs[direction] += np.bincount(keys, minlength=self.size)

    def emit(self, recorder, start: float, end: float,
             activity: str | None) -> None:
        p = self.p
        for direction in (0, 1):
            idx = np.flatnonzero(self.msgs[direction])
            if not idx.size:
                continue
            # Bulk-convert once: per-element numpy scalar boxing would
            # dominate the whole write-back on wide platforms.
            busy = self.busy[direction][idx].tolist()
            nbytes = self.nbytes[direction][idx].tolist()
            wait = self.wait[direction][idx].tolist()
            msgs = self.msgs[direction][idx].tolist()
            for i, key in enumerate(idx.tolist()):
                port = key >> 2
                recorder.record_batch(
                    port if port < p else p - 1 - port, key & 3, direction,
                    start, end, busy[i], nbytes[i], int(msgs[i]), wait[i],
                    activity)


# --------------------------------------------------------------------- #
# Exact sequential port chains, vectorized
# --------------------------------------------------------------------- #


def _seq_chain(a: np.ndarray, t: np.ndarray, free0: float) -> tuple[np.ndarray, float]:
    """Evaluate ``end_j = max(a_j, end_{j-1}) + t_j`` with ``end_{-1} = free0``.

    This is the engine's port-claim recurrence for one port's claim
    sequence (``a`` = per-claim ready times in claim order, ``t`` =
    transmission times).  ``np.add.accumulate`` on float64 is a strict
    left fold, so a run with no resets (``a_j <= end_{j-1}``) is evaluated
    in one vector pass with bit-identical rounding; each pass extends to
    the first reset, then re-bases.  Saturated ports — the regime flow
    batching targets — reset O(1) times.  Returns (ends, final_free).
    """
    n = a.shape[0]
    out = np.empty(n)
    start = 0
    prev = free0
    while True:
        base = a[start] if a[start] > prev else prev
        seg = np.empty(n - start + 1)
        seg[0] = base
        seg[1:] = t[start:]
        np.add.accumulate(seg, out=seg)
        ends = seg[1:]
        viol = np.flatnonzero(a[start + 1 :] > ends[:-1])
        if viol.size == 0:
            out[start:] = ends
            return out, float(out[-1])
        stop = start + 1 + int(viol[0])
        out[start:stop] = ends[: stop - start]
        prev = float(out[stop - 1])
        start = stop


# --------------------------------------------------------------------- #
# Phase replays
# --------------------------------------------------------------------- #


def _replay_stepped(
    plan: FlowPlan, nt: _NetTables, state: _PortState, entries: np.ndarray,
    accum: _LinkAccum | None = None,
) -> np.ndarray:
    """Replay a stepped exchange phase; returns per-rank exit times.

    Each step replicates the exact engine per rank: isend (clock += send
    overhead, eager port claim at ready or rendezvous claim at CTS
    arrival), irecv (clock += recv overhead), delivery at the receiver
    (eager extraction-port claim or rendezvous extract), waitall (clock =
    max of clock and both completion times).  All per-step quantities are
    elementwise over ranks; each shared node port is chained as a single
    sequence, which is exact because the dispatcher's single-owner scan
    guarantees at most one rank claims any node port during the phase.
    """
    p = nt.p
    ranks = np.arange(p)
    node_r = nt.node_of
    tx, rx = state.tx, state.rx
    node_tx, node_rx = state.node_tx, state.node_rx
    shared = nt.shared
    now = entries.copy()
    for dst, src, sbytes in plan.steps():
        now = now + nt.o          # isend: post, clock advance
        ready = now               # send ready == this step's irecv post time
        now = now + nt.ro         # irecv: clock advance
        cls = nt.classes(ranks, dst)
        tx_time = sbytes * nt.inv_bw[cls]
        lat = nt.lat[cls]
        eager = sbytes <= nt.eager_max
        # Rendezvous handshake: RTS at ready+lat, CTS back after the
        # receiver's recv post; the data claim starts at CTS arrival.
        if eager.all():
            claim_ready = ready
        else:
            handshake = np.maximum(ready[dst], ready + lat)
            claim_ready = np.where(eager, ready, handshake + lat)
        shared_o = (cls >= 2) if shared else None
        if shared:
            free_eff = np.where(shared_o, node_tx[node_r], tx)
        else:
            free_eff = tx
        tx_start = np.maximum(claim_ready, free_eff)
        tx_end = tx_start + tx_time
        if shared:
            tx = np.where(shared_o, tx, tx_end)
            node_tx[node_r[shared_o]] = tx_end[shared_o]
        else:
            tx = tx_end
        if accum is not None:
            ports = np.where(shared_o, p + node_r, ranks) if shared else ranks
            accum.add(0, ports, cls, tx_time, sbytes, tx_start - claim_ready)
        # Receiver side: rank r's inbound message comes from src[r]; its
        # sender-side quantities are gathers of the arrays above.
        arrival_in = tx_end[src] + lat[src]
        rx_time_in = tx_time[src]
        a_val = np.where(eager[src], np.maximum(ready, arrival_in), arrival_in)
        if nt.rx_ser:
            if shared:
                shared_i = cls[src] >= 2
                free_eff = np.where(shared_i, node_rx[node_r], rx)
            else:
                free_eff = rx
            rx_start = np.maximum(a_val, free_eff)
            delivered = rx_start + rx_time_in
            if shared:
                rx = np.where(shared_i, rx, delivered)
                node_rx[node_r[shared_i]] = delivered[shared_i]
            else:
                rx = delivered
            if accum is not None:
                ports = (np.where(shared_i, p + node_r, ranks)
                         if shared else ranks)
                accum.add(1, ports, cls[src], rx_time_in,
                          np.broadcast_to(np.asarray(sbytes, dtype=float),
                                          (p,))[src],
                          rx_start - a_val)
        else:
            delivered = a_val
        now = np.maximum(np.maximum(now, tx_end), delivered)
    state.tx, state.rx = tx, rx
    return now


def _replay_linear(
    plan: FlowPlan,
    nt: _NetTables,
    state: _PortState,
    entries: np.ndarray,
    order: np.ndarray,
    accum: _LinkAccum | None = None,
) -> np.ndarray:
    """Replay the basic-linear alltoall phase; returns per-rank exit times.

    Every rank posts ``p-1`` receives then ``p-1`` eager sends and waits
    once, so *all* posts of a rank execute in its single arrival resume —
    port claims interleave across ranks in **gate-arrival order** (``order``),
    send-index minor.  Receiver extraction ports are claimed at delivery
    events, globally ordered by ``(arrival, schedule seq)``; the stable
    two-key sort below reproduces that order exactly, and every port's
    claim sequence is then evaluated with :func:`_seq_chain`.
    """
    p = nt.p
    m = p - 1
    rank_of_pos = order
    t_pos = entries[rank_of_pos]

    # Sequential clock advance per rank: m recv-overhead adds, then m
    # send-overhead adds — replicated as a left-fold accumulate per row.
    seq = np.empty((p, 2 * m + 1))
    seq[:, 0] = t_pos
    seq[:, 1 : m + 1] = nt.ro
    seq[:, m + 1 :] = nt.o
    np.add.accumulate(seq, axis=1, out=seq)
    recv_post_pos = seq[:, :m]      # post time of the j-th irecv
    ready = seq[:, m + 1 :]         # ready time of the k-th isend
    now_after = seq[:, -1].copy()

    recv_post_rank = np.empty((p, m))
    recv_post_rank[rank_of_pos] = recv_post_pos

    # int32 indices: the O(p*m) gathers below are memory-bound and p < 2^31.
    off = np.arange(1, p, dtype=np.int32)
    src_col = rank_of_pos.astype(np.int32)[:, None]  # (p, 1) sender per row
    dst = src_col + off[None, :]                  # (p, m) receiver per element
    dst -= (dst >= p).astype(np.int32) * np.int32(p)  # cheaper than % p
    nod_s = nt.node_of[src_col]
    nod_d = nt.node_of[dst]
    if nt.multi_group:
        cls = np.where(
            nod_d == nod_s, 1,
            np.where(nt.group_of[dst] == nt.group_of[src_col], 2, 3),
        ).astype(np.int8)
    else:
        cls = np.where(nod_d == nod_s, np.int8(1), np.int8(2))
    tx_time = plan.msg_bytes * nt.inv_bw[cls]
    lat = nt.lat[cls]

    # --- injection-port claims, in (arrival position, send index) order ---
    tx_end = np.empty((p, m))
    shared_elem = (cls >= 2) if nt.shared else np.zeros((p, m), dtype=bool)
    # One pass instead of p flatnonzero row scans: np.nonzero is row-major,
    # which IS the claim order (arrival position major, send index minor).
    pr_rows, pr_cols = np.nonzero(~shared_elem)
    row_bounds = np.searchsorted(pr_rows, np.arange(p + 1))
    tx_state = state.tx
    for a in range(p):                      # private chains: <= cores-1 each
        b0, b1 = row_bounds[a], row_bounds[a + 1]
        if b0 == b1:
            continue
        idx = pr_cols[b0:b1]
        r = int(rank_of_pos[a])
        ends, last = _seq_chain(ready[a, idx], tx_time[a, idx], tx_state[r])
        tx_end[a, idx] = ends
        tx_state[r] = last
    if nt.shared:
        # A row's shared elements all claim the same node port (the
        # sender's node), so grouping by node only needs a p-row sort; the
        # row-major order of np.nonzero already matches the claim order
        # within and across the rows of one node.
        sh_rows, sh_cols = np.nonzero(shared_elem)
        if sh_rows.size:
            flat_sh = sh_rows.astype(np.int64) * m + sh_cols
            counts = np.bincount(sh_rows, minlength=p)
            starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
            row_node = nt.node_of[rank_of_pos]
            rperm = np.argsort(row_node, kind="stable")
            # Segmented arange: concatenate each sorted row's element range.
            lens = counts[rperm]
            total = int(lens.sum())
            if total:
                seg_off = np.repeat(np.cumsum(lens) - lens, lens)
                gather = np.repeat(starts[rperm], lens) + (
                    np.arange(total) - seg_off
                )
                sel_flat = flat_sh[gather]
                node_sorted = np.repeat(row_node[rperm], lens)
                ready_f = ready.ravel()[sel_flat]
                txt_f = tx_time.ravel()[sel_flat]
                tx_end_flat = tx_end.ravel()
                bounds = np.flatnonzero(np.diff(node_sorted)) + 1
                for b0, b1 in zip(
                    np.concatenate(([0], bounds)),
                    np.concatenate((bounds, [total])),
                ):
                    node = int(node_sorted[b0])
                    ends, last = _seq_chain(
                        ready_f[b0:b1], txt_f[b0:b1], state.node_tx[node]
                    )
                    tx_end_flat[sel_flat[b0:b1]] = ends
                    state.node_tx[node] = last

    if accum is not None:
        # The chains only surface end times, so the aggregate reconstructs
        # start = end - tx_time; wait can differ from the exact engine's in
        # the last ulp (clamped at zero), while bytes/messages are exact.
        tx_ports = np.where(shared_elem, p + nod_s,
                            np.broadcast_to(src_col, (p, m)))
        accum.add(0, tx_ports, cls, tx_time, plan.msg_bytes,
                  np.maximum(tx_end - tx_time - ready, 0.0))

    # --- deliveries: extraction-port claims in (arrival, seq) order ---
    arrival = tx_end + lat
    recv_idx = (src_col - (src_col > dst)).astype(np.int32)
    a_val = np.maximum(recv_post_rank[dst, recv_idx], arrival)
    if nt.rx_ser:
        res_id = np.where(shared_elem, p + nod_d, dst)
        arrival_f = arrival.ravel()
        res_f = res_id.ravel()
        # All times are positive finite, so the IEEE-754 bit pattern viewed
        # as uint64 sorts identically to the float — and integer keys take
        # numpy's radix path, several times faster at p^2 scale.
        perm1 = np.argsort(arrival_f.view(np.uint64), kind="stable")
        perm = perm1[np.argsort(res_f[perm1], kind="stable")]
        res_sorted = res_f[perm]
        a_f = a_val.ravel()[perm]
        txt_f = tx_time.ravel()[perm]
        delivered_f = np.empty(p * m)
        bounds = np.flatnonzero(np.diff(res_sorted)) + 1
        for b0, b1 in zip(
            np.concatenate(([0], bounds)),
            np.concatenate((bounds, [res_sorted.size])),
        ):
            res = int(res_sorted[b0])
            free0 = state.rx[res] if res < p else state.node_rx[res - p]
            ends, last = _seq_chain(a_f[b0:b1], txt_f[b0:b1], free0)
            delivered_f[perm[b0:b1]] = ends
            if res < p:
                state.rx[res] = last
            else:
                state.node_rx[res - p] = last
        delivered = delivered_f.reshape(p, m)
        if accum is not None:
            accum.add(1, res_id, cls, tx_time, plan.msg_bytes,
                      np.maximum(delivered - tx_time - a_val, 0.0))
    else:
        delivered = a_val

    # --- waitall: exit = max(clock after posts, send ends, recv ends) ---
    # Scatter deliveries into receiver-major layout (each slot written once:
    # every column of dst is a permutation of the ranks), then reduce; max
    # is exact, so the reduction order cannot change the result.
    recv_major = np.empty((p, m))
    cols = np.broadcast_to(np.arange(m), (p, m))
    recv_major[dst, cols] = delivered
    exits = np.empty(p)
    exits[rank_of_pos] = np.maximum(now_after, tx_end.max(axis=1))
    np.maximum(exits, recv_major.max(axis=1), out=exits)
    return exits


# --------------------------------------------------------------------- #
# Gate and runtime
# --------------------------------------------------------------------- #


class FlowGate:
    """Rendezvous point where all ranks of one planned phase meet.

    Each rank's ``run_collective`` yields ``("flow_gate", gate)``; the
    engine blocks the fiber and calls :meth:`arrive`.  The last arrival
    triggers :meth:`resolve`: snapshot port state, replay the phase, write
    the state back, and schedule every rank's resume (rank-ascending) at
    its computed exit time with its result as the resume value.
    """

    __slots__ = (
        "runtime", "plan", "signature", "result_fn", "fibers", "data",
        "order", "arrived",
    )

    def __init__(self, runtime: "FlowRuntime", plan: FlowPlan,
                 signature: tuple, result_fn) -> None:
        p = runtime.engine.num_procs
        self.runtime = runtime
        self.plan = plan
        self.signature = signature
        self.result_fn = result_fn
        self.fibers: list = [None] * p
        self.data: list = [None] * p
        self.order: list[int] = []
        self.arrived = 0

    def arrive(self, fiber) -> None:
        rank = fiber.rank
        if self.fibers[rank] is not None:
            raise SimulationError(
                f"rank {rank} re-entered the flow gate for "
                f"{self.plan.collective}/{self.plan.algorithm}"
            )
        self.fibers[rank] = fiber
        self.order.append(rank)
        self.arrived += 1
        if self.arrived == len(self.fibers):
            self.resolve()

    def resolve(self) -> None:
        runtime = self.runtime
        engine = runtime.engine
        plan = self.plan
        cfg = runtime.config
        runtime._active_gate = None
        p = engine.num_procs
        nt = runtime.net_tables
        entries = np.array([f.now for f in self.fibers])
        if cfg.mode == "hybrid" and (
            plan.kind == "linear" or not nt.private_ports
        ):
            spread = float(entries.max() - entries.min())
            if spread > cfg.tolerance:
                raise SimulationError(
                    f"flow gate for {plan.collective}/{plan.algorithm}: actual "
                    f"entry spread {spread:.3g}s exceeds the hybrid tolerance "
                    f"{cfg.tolerance:.3g}s — the declared pattern spread did "
                    "not hold at this phase (collectives not separated by a "
                    "harmonized barrier?); rerun with --engine-mode exact, or "
                    "--engine-mode flow to accept an analytic approximation"
                )
        state = _PortState(engine)
        accum = _LinkAccum(nt) if engine._obs_link is not None else None
        if plan.kind == "linear":
            order = np.array(self.order, dtype=np.int64)
            exits = _replay_linear(plan, nt, state, entries, order, accum)
        else:
            exits = _replay_stepped(plan, nt, state, entries, accum)
        state.write_back(engine)
        if accum is not None:
            accum.emit(engine._obs_link, float(entries.min()),
                       float(exits.max()), engine.activity)
        if cfg.payloads and self.result_fn is not None:
            results = self.result_fn(self.data)
        else:
            results = [None] * p
        floor = engine.now
        for r in range(p):
            fib = self.fibers[r]
            exit_t = float(exits[r])
            fib.now = exit_t
            engine._schedule(
                exit_t if exit_t >= floor else floor, _EV_RESUME, fib, results[r]
            )
        runtime.batches += 1
        runtime.messages_collapsed += plan.est_messages
        octx = _obs_current()
        if octx.enabled:
            labels = {"algorithm": plan.algorithm}
            octx.metrics.counter("flow.batches", labels).inc()
            octx.metrics.counter("flow.messages_collapsed",
                                 labels).inc(plan.est_messages)


class FlowRuntime:
    """Per-engine flow state: dispatch decisions, gates, and counters.

    Attached to an engine as ``engine.flow_runtime`` by
    :func:`repro.sim.mpi.build_engine` when a :class:`FlowConfig` with a
    non-exact mode is supplied.  The plain attribute counters mirror the
    ``flow.*`` obs counters so benchmarks can assert coverage without an
    open observability session.
    """

    def __init__(self, engine: Engine, config: FlowConfig) -> None:
        if config.mode == "exact":
            raise ConfigurationError("FlowRuntime is pointless in exact mode")
        self.engine = engine
        self.config = config
        self.batches = 0
        self.messages_collapsed = 0
        self.fallback_calls = 0
        self.fallback_messages = 0
        self._active_gate: FlowGate | None = None
        self._nt: _NetTables | None = None
        self._owner_cache: dict[tuple, bool] = {}

    @property
    def net_tables(self) -> _NetTables:
        nt = self._nt
        if nt is None:
            nt = self._nt = _NetTables(self.engine)
        return nt

    def dispatch(self, ctx, collective: str, algorithm: str, args, data,
                 result_fn) -> Iterator | None:
        """A flow-path generator for this call, or ``None`` for exact.

        The decision depends only on call parameters, config, and platform
        shape, so every rank of one collective call decides identically.
        """
        engine = self.engine
        p = engine.num_procs
        if p <= 1:
            return None
        if ctx._fiber is not engine.procs[ctx.rank].fibers[0]:
            return None
        if not hasattr(args, "count"):
            # Vector collectives (VectorArgs: per-rank/per-pair counts) have
            # no stepped flow plan yet; label them distinctly so workload
            # runs do not silently read as generic "no_plan" regressions.
            self._count_fallback(ctx, "vector", 0)
            return None
        fn = _DESCRIPTORS.get((collective, algorithm))
        if fn is None:
            self._count_fallback(ctx, "no_plan", 0)
            return None
        plan = fn(p, args, engine.network)
        if plan is None:
            self._count_fallback(ctx, "no_plan", 0)
            return None
        cfg = self.config
        nt = self.net_tables
        reason = None
        if not plan.hetero_ok and not nt.uniform:
            reason = "hetero"
        elif cfg.mode == "hybrid" and (
            plan.kind == "linear" or not nt.private_ports
        ):
            # Stepped plans on private-port platforms are order-insensitive
            # (single-owner ports; skew folds into the recurrences exactly)
            # and engage at any declared spread.  Linear plans and shared
            # node ports need aligned entries to stay bit-exact.
            if cfg.declared_spread is None:
                reason = "unknown_spread"
            elif cfg.declared_spread > cfg.tolerance:
                reason = "skew"
            elif plan.kind == "stepped" and not self._single_port_owner(plan, args):
                # The vectorized stepped replay chains each shared node port
                # as one sequence; two ranks claiming the same port would
                # need event-order serialization it does not model.
                reason = "shared_contention"
        if reason is not None:
            if ctx.rank == 0:        # count once per collective call
                # The plain attributes keep their original semantics (a plan
                # existed but fell back); the labeled obs counters also see
                # "no_plan" calls from the early returns above.
                self.fallback_calls += 1
                self.fallback_messages += plan.est_messages
            self._count_fallback(ctx, "spread" if reason == "skew" else reason,
                                 plan.est_messages)
            return None
        signature = (collective, algorithm, p, args.count, args.msg_bytes, args.tag)
        return self._flow_body(ctx, plan, signature, result_fn, data)

    def _count_fallback(self, ctx, reason: str, est_messages: int) -> None:
        """Count one fallback-to-exact decision under its reason label.

        Counted once per collective call (at rank 0) so the totals read as
        calls, not call × ranks.  ``est_messages`` is zero when no plan
        exists to estimate from (``reason="no_plan"``).
        """
        if ctx.rank != 0:
            return
        octx = _obs_current()
        if not octx.enabled:
            return
        labels = {"reason": reason}
        octx.metrics.counter("flow.fallback_calls", labels).inc()
        octx.metrics.counter("flow.fallback_messages", labels).inc(est_messages)

    def _single_port_owner(self, plan: FlowPlan, args) -> bool:
        """Whether every shared node port has at most one claiming rank.

        Stepped replays on shared-NIC multi-rank nodes are exact only when
        each node's injection and extraction port is touched by a single
        rank for the whole phase — true for ring schedules (only the
        node-boundary ranks cross nodes), false for strided exchanges like
        pairwise or recursive doubling where several co-located ranks send
        inter-node in the same step.  The scan is O(p) per step with an
        early exit on the first violation, and the verdict depends only on
        the schedule shape, so it is cached across ranks and repetitions.
        """
        nt = self.net_tables
        key = (plan.collective, plan.algorithm, nt.p, args.count, args.msg_bytes)
        cached = self._owner_cache.get(key)
        if cached is not None:
            return cached
        ranks = np.arange(nt.p)
        node = nt.node_of
        num_nodes = int(node.max()) + 1
        tx_owner = np.full(num_nodes, -1, dtype=np.int64)
        rx_owner = np.full(num_nodes, -1, dtype=np.int64)
        ok = True
        prev_dst = prev_src = None
        for dst, src, _sbytes in plan.steps():
            # Ring-style schedules repeat the same partner map every step;
            # a repeated map cannot add owners, so skip the rescan.
            if (
                prev_dst is not None
                and np.array_equal(dst, prev_dst)
                and np.array_equal(src, prev_src)
            ):
                continue
            prev_dst, prev_src = dst, src
            cls = nt.classes(ranks, dst)
            for inter, owner, claimant in (
                (cls >= 2, tx_owner, ranks),
                ((cls[src] >= 2) if nt.rx_ser else None, rx_owner, ranks),
            ):
                if inter is None or not inter.any():
                    continue
                c_ranks = claimant[inter]
                c_nodes = node[c_ranks]
                prev = owner[c_nodes]
                if (np.any((prev != -1) & (prev != c_ranks))
                        or np.unique(c_nodes).size != c_nodes.size):
                    ok = False
                    break
                owner[c_nodes] = c_ranks
            if not ok:
                break
        self._owner_cache[key] = ok
        return ok

    def _flow_body(self, ctx, plan, signature, result_fn, data):
        gate = self._active_gate
        if gate is None:
            gate = FlowGate(self, plan, signature, result_fn)
            self._active_gate = gate
        elif gate.signature != signature:
            raise SimulationError(
                f"flow gate mismatch: rank {ctx.rank} entered {signature} while "
                f"the active batch is {gate.signature} — ranks must call the "
                "same collective with the same parameters"
            )
        gate.data[ctx.rank] = data
        result = yield ("flow_gate", gate)
        return result


__all__ = [
    "ENGINE_MODES",
    "FlowConfig",
    "FlowGate",
    "FlowPlan",
    "FlowRuntime",
    "get_descriptor",
    "phase_descriptor",
]
