"""Conservative discrete-event engine with generator-coroutine processes.

Model
-----
Each simulated MPI process is a Python generator.  The engine resumes
generators in global timestamp order; between two yields a process executes
"instantaneously" except for explicit CPU overheads that advance its local
clock.  A generator yields one of three blocking conditions:

``("sleep", dt)``
    resume ``dt`` simulated seconds later,
``("until", t)``
    resume at absolute simulated time ``t`` (or immediately if past),
``("wait", [requests])``
    resume when every :class:`Request` in the list has completed,
``("wait_any", [requests])``
    resume when at least one request has completed; the resume value is the
    index of the earliest-completing request.

Messaging follows a LogGP-flavoured cost model (see
:class:`repro.sim.network.NetworkModel`):

* the sender pays a CPU overhead ``o`` per message,
* the message occupies the sender's private *injection port* for
  ``bytes / bandwidth`` seconds (back-to-back sends serialize),
* the wire adds latency ``L`` (intra- or inter-node),
* optionally the message occupies the receiver's *extraction port*
  (incast serialization).

Messages up to the eager threshold use the *eager* protocol (the sender
never blocks on the receiver).  Larger messages use *rendezvous*: an RTS
control message travels to the receiver, the data transfer starts only once
the matching receive is posted (plus a CTS latency back), so a late receiver
stalls the sender — the first-order mechanism by which process-arrival skew
propagates through large-message collectives.

Determinism: the event heap breaks ties by insertion sequence; given the
same inputs a simulation is bit-for-bit reproducible.

One deliberate approximation: a process that is resumed at time ``T`` runs
ahead to its next blocking point, claiming port time for operations stamped
``T + k*o`` even though other heap events in ``(T, T + k*o)`` have not been
processed yet.  Port bookkeeping is a max-chain, so this can only reorder
grants within a few CPU-overhead periods (~1 µs) and never moves any event
backwards in time.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Iterator

from repro.errors import DeadlockError, ProtocolError, SimulationError
from repro.sim.network import NetworkModel

ANY_SOURCE = -1
ANY_TAG = -1

# Request kinds
_SEND = 0
_RECV = 1


class Request:
    """Handle for a pending non-blocking operation.

    ``complete_time`` is ``None`` while the operation is in flight.  For
    receives, ``payload`` holds the received data object (or ``None`` when
    the sender attached no payload) once complete; ``source_rank`` and
    ``recv_tag`` record the matched envelope, which is what callers need when
    receiving with :data:`ANY_SOURCE` / :data:`ANY_TAG`.
    """

    __slots__ = (
        "kind",
        "owner",
        "peer",
        "tag",
        "nbytes",
        "complete_time",
        "payload",
        "source_rank",
        "recv_tag",
        "post_time",
    )

    def __init__(self, kind: int, owner: int, peer: int, tag: int, nbytes: int) -> None:
        self.kind = kind
        self.owner = owner
        self.peer = peer
        self.tag = tag
        self.nbytes = nbytes
        self.complete_time: float | None = None
        self.payload: Any = None
        self.source_rank: int | None = None
        self.recv_tag: int | None = None
        self.post_time: float = 0.0

    @property
    def done(self) -> bool:
        return self.complete_time is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "send" if self.kind == _SEND else "recv"
        state = f"done@{self.complete_time:.9f}" if self.done else "pending"
        return f"<Request {kind} owner={self.owner} peer={self.peer} tag={self.tag} {state}>"


class _Message:
    """An in-flight message (eager data or rendezvous RTS)."""

    __slots__ = ("src", "dst", "tag", "nbytes", "payload", "send_req", "eager", "arrival")

    def __init__(
        self,
        src: int,
        dst: int,
        tag: int,
        nbytes: int,
        payload: Any,
        send_req: Request,
        eager: bool,
        arrival: float,
    ) -> None:
        self.src = src
        self.dst = dst
        self.tag = tag
        self.nbytes = nbytes
        self.payload = payload
        self.send_req = send_req
        self.eager = eager
        self.arrival = arrival


class _Fiber:
    """One execution strand of a simulated process.

    Every process has a *main* fiber; additional fibers model concurrently
    progressing activities of the same rank (e.g. a hardware-offloaded
    non-blocking collective).  Each fiber has its own clock and blocking
    state; fibers of one rank share the rank's ports and message queues.

    A finished fiber is itself waitable: it exposes the same
    ``kind``/``owner``/``done``/``complete_time`` surface as a
    :class:`Request`, so ``yield ctx.waitall(fiber)`` joins it.
    """

    __slots__ = (
        "proc",
        "gen",
        "now",
        "waiting",
        "wait_any",
        "done",
        "blocked",
        "result",
        "complete_time",
        "kind",
        "owner",
    )

    def __init__(self, proc: "_Proc", gen: Iterator[Any] | None, now: float) -> None:
        self.proc = proc
        self.gen = gen
        self.now = now
        # Requests this fiber is currently blocked on (None when runnable).
        self.waiting: list[Request] | None = None
        # True when blocked on wait_any (first completion resumes).
        self.wait_any = False
        self.done = False
        self.blocked = False
        # Value returned by the generator (StopIteration.value).
        self.result: Any = None
        # Waitable surface (set when the fiber finishes).
        self.complete_time: float | None = None
        self.kind = _SEND  # joining is never a "foreign recv"
        self.owner = proc.rank

    @property
    def rank(self) -> int:
        return self.proc.rank


class _Proc:
    """Engine-internal rank-level state (ports, queues, fibers)."""

    __slots__ = (
        "rank",
        "fibers",
        "tx_free",
        "rx_free",
        "unexpected",
        "posted",
    )

    def __init__(self, rank: int) -> None:
        self.rank = rank
        self.fibers: list[_Fiber] = [_Fiber(self, None, 0.0)]
        self.tx_free = 0.0
        self.rx_free = 0.0
        # (src, tag) -> deque of arrived-but-unmatched messages.
        self.unexpected: dict[tuple[int, int], deque[_Message]] = {}
        # (src, tag) -> deque of posted-but-unmatched recv requests.
        self.posted: dict[tuple[int, int], deque[Request]] = {}

    @property
    def main(self) -> _Fiber:
        return self.fibers[0]

    @property
    def now(self) -> float:
        """The main fiber's clock (rank-level convenience view)."""
        return self.main.now

    @property
    def done(self) -> bool:
        return all(f.done for f in self.fibers)

    @property
    def result(self) -> Any:
        return self.main.result


class Engine:
    """Discrete-event simulator for a fixed set of message-passing processes.

    Parameters
    ----------
    num_procs:
        Number of simulated MPI ranks.
    network:
        The :class:`~repro.sim.network.NetworkModel` that prices messages.
    max_events:
        Safety valve against runaway simulations; exceeding it raises
        :class:`SimulationError`.
    """

    def __init__(self, num_procs: int, network: NetworkModel, max_events: int = 200_000_000):
        if num_procs <= 0:
            raise ProtocolError(f"num_procs must be positive, got {num_procs}")
        self.num_procs = num_procs
        self.network = network
        self.max_events = max_events
        self.procs = [_Proc(rank) for rank in range(num_procs)]
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._events_processed = 0
        self.now = 0.0
        # Shared per-node NIC ports for inter-node traffic (see NetworkModel).
        self._node_tx_free = [0.0] * network.num_nodes
        self._node_rx_free = [0.0] * network.num_nodes
        self._node_of = network.node_of

    # ------------------------------------------------------------------ #
    # Event plumbing
    # ------------------------------------------------------------------ #

    def _schedule(self, time: float, action: Callable[[], None]) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, action))

    def set_process(self, rank: int, gen: Iterator[Any]) -> None:
        """Install the generator driving rank ``rank`` and schedule its start."""
        proc = self.procs[rank]
        main = proc.main
        if main.gen is not None:
            raise ProtocolError(f"process {rank} already has a generator")
        main.gen = gen
        self._schedule(main.now, lambda f=main: self._resume(f, first=True))

    def spawn_fiber(self, rank: int, gen: Iterator[Any] | None,
                    start_time: float) -> _Fiber:
        """Start an additional concurrently progressing fiber on ``rank``.

        The fiber shares the rank's ports and message queues but has its own
        clock, starting at ``start_time``.  The returned fiber is waitable
        (``yield ctx.waitall(fiber)``) from fibers of the same rank.
        ``gen`` may be installed after the call (before the engine first
        resumes the fiber).
        """
        proc = self.procs[rank]
        fiber = _Fiber(proc, gen, start_time)
        proc.fibers.append(fiber)
        self._schedule(start_time, lambda f=fiber: self._resume(f, first=True))
        return fiber

    def run(self) -> float:
        """Run the simulation to completion; return the final simulated time.

        Raises :class:`DeadlockError` if the event heap drains while some
        processes are still blocked on requests that can never complete.
        """
        for proc in self.procs:
            if proc.main.gen is None:
                raise ProtocolError(f"process {proc.rank} has no generator installed")
        while self._heap:
            time, _seq, action = heapq.heappop(self._heap)
            if time < self.now - 1e-15:
                raise SimulationError(
                    f"causality violation: event at {time} before clock {self.now}"
                )
            self.now = max(self.now, time)
            self._events_processed += 1
            if self._events_processed > self.max_events:
                raise SimulationError(f"exceeded max_events={self.max_events}")
            action()
        blocked = [p.rank for p in self.procs if not p.done]
        if blocked:
            raise DeadlockError(blocked)
        return self.now

    # ------------------------------------------------------------------ #
    # Process execution
    # ------------------------------------------------------------------ #

    def _resume(self, fiber: _Fiber, value: Any = None, first: bool = False) -> None:
        """Advance ``fiber``'s generator until its next blocking condition."""
        if fiber.done:
            raise ProtocolError(f"resuming finished fiber of process {fiber.rank}")
        fiber.blocked = False
        gen = fiber.gen
        assert gen is not None
        try:
            condition = next(gen) if first else gen.send(value)
        except StopIteration as stop:
            fiber.done = True
            fiber.result = stop.value
            fiber.complete_time = fiber.now
            # Joiners (other fibers of this rank) may be waiting on us.
            self._check_wait_done(fiber.proc)
            return
        self._apply_condition(fiber, condition)

    def _apply_condition(self, fiber: _Fiber, condition: Any) -> None:
        try:
            kind = condition[0]
        except (TypeError, IndexError):
            raise ProtocolError(
                f"process {fiber.rank} yielded invalid condition {condition!r}"
            ) from None
        if kind in ("wait", "wait_any"):
            requests: list[Request] = condition[1]
            any_mode = kind == "wait_any"
            for req in requests:
                if req.kind == _RECV and req.owner != fiber.rank:
                    raise ProtocolError(
                        f"process {fiber.rank} waiting on foreign recv of rank {req.owner}"
                    )
            if any_mode:
                done_times = [
                    (r.complete_time, i) for i, r in enumerate(requests) if r.done
                ]
                if done_times:
                    when, index = min(done_times)
                    resume_at = max(fiber.now, when)
                    fiber.now = resume_at
                    self._schedule(resume_at, lambda f=fiber, i=index: self._resume(f, i))
                else:
                    fiber.waiting = requests
                    fiber.wait_any = True
                    fiber.blocked = True
                return
            pending = [r for r in requests if not r.done]
            if not pending:
                resume_at = max([fiber.now] + [r.complete_time for r in requests])  # type: ignore[list-item]
                fiber.now = resume_at
                self._schedule(resume_at, lambda f=fiber: self._resume(f))
            else:
                fiber.waiting = requests
                fiber.wait_any = False
                fiber.blocked = True
        elif kind == "sleep":
            dt = condition[1]
            if dt < 0:
                raise ProtocolError(f"process {fiber.rank} slept for negative time {dt}")
            fiber.now += dt
            self._schedule(fiber.now, lambda f=fiber: self._resume(f))
        elif kind == "until":
            target = condition[1]
            fiber.now = max(fiber.now, target)
            self._schedule(fiber.now, lambda f=fiber: self._resume(f))
        else:
            raise ProtocolError(
                f"process {fiber.rank} yielded unknown condition {condition!r}"
            )

    def _check_wait_done(self, proc: _Proc) -> None:
        """Schedule resumes for any fiber whose blocking condition is satisfied."""
        for fiber in proc.fibers:
            if not fiber.blocked or fiber.waiting is None:
                continue
            if fiber.wait_any:
                done_times = [
                    (r.complete_time, i) for i, r in enumerate(fiber.waiting) if r.done
                ]
                if done_times:
                    when, index = min(done_times)
                    resume_at = max(fiber.now, when)
                    fiber.waiting = None
                    fiber.wait_any = False
                    fiber.blocked = False
                    fiber.now = resume_at
                    self._schedule(
                        resume_at, lambda f=fiber, i=index: self._resume(f, i)
                    )
                continue
            if all(r.done for r in fiber.waiting):
                resume_at = max(
                    [fiber.now] + [r.complete_time for r in fiber.waiting]  # type: ignore[list-item]
                )
                fiber.waiting = None
                fiber.blocked = False
                fiber.now = resume_at
                self._schedule(resume_at, lambda f=fiber: self._resume(f))

    # ------------------------------------------------------------------ #
    # Point-to-point messaging
    # ------------------------------------------------------------------ #

    def post_isend(
        self, src: int, dst: int, nbytes: int, tag: int, payload: Any = None,
        sync: bool = False, fiber: _Fiber | None = None,
    ) -> Request:
        """Post a non-blocking send from ``src``'s current local time.

        ``sync=True`` forces the rendezvous protocol regardless of size
        (``MPI_Issend`` semantics): the send cannot complete before the
        matching receive is posted.  ``fiber`` selects which of the rank's
        fibers posts (and pays the CPU overhead); default is the main fiber.
        """
        if not (0 <= dst < self.num_procs):
            raise ProtocolError(f"isend to invalid rank {dst}")
        if nbytes < 0:
            raise ProtocolError(f"isend with negative size {nbytes}")
        if tag < 0:
            raise ProtocolError(f"isend with negative tag {tag} (reserved for wildcards)")
        proc = self.procs[src]
        fib = fiber if fiber is not None else proc.main
        net = self.network
        req = Request(_SEND, src, dst, tag, nbytes)
        req.post_time = fib.now
        fib.now += net.send_overhead
        if net.is_eager(nbytes) and not sync:
            tx_end = self._claim_tx(proc, dst, fib.now, nbytes)
            req.complete_time = tx_end
            arrival = tx_end + net.latency(src, dst)
            msg = _Message(src, dst, tag, nbytes, payload, req, True, arrival)
            self._schedule(arrival, lambda m=msg: self._deliver(m))
        else:
            # Rendezvous: the RTS travels now; data moves once matched.
            rts_arrival = fib.now + net.latency(src, dst)
            msg = _Message(src, dst, tag, nbytes, payload, req, False, rts_arrival)
            self._schedule(rts_arrival, lambda m=msg: self._deliver(m))
        return req

    def post_irecv(self, dst: int, src: int, tag: int, nbytes: int = 0,
                   fiber: _Fiber | None = None) -> Request:
        """Post a non-blocking receive at ``dst``'s current local time.

        ``src`` may be :data:`ANY_SOURCE` and ``tag`` may be :data:`ANY_TAG`.
        """
        if src != ANY_SOURCE and not (0 <= src < self.num_procs):
            raise ProtocolError(f"irecv from invalid rank {src}")
        proc = self.procs[dst]
        fib = fiber if fiber is not None else proc.main
        req = Request(_RECV, dst, src, tag, nbytes)
        req.post_time = fib.now
        fib.now += self.network.recv_overhead
        msg = self._match_unexpected(proc, src, tag)
        if msg is not None:
            self._complete_match(proc, req, msg)
        else:
            proc.posted.setdefault((src, tag), deque()).append(req)
        return req

    # -- matching ------------------------------------------------------- #

    def _match_unexpected(self, proc: _Proc, src: int, tag: int) -> _Message | None:
        """Find the earliest-arrived unexpected message matching (src, tag)."""
        candidates: list[tuple[float, tuple[int, int]]] = []
        for (msrc, mtag), queue in proc.unexpected.items():
            if not queue:
                continue
            if (src == ANY_SOURCE or msrc == src) and (tag == ANY_TAG or mtag == tag):
                candidates.append((queue[0].arrival, (msrc, mtag)))
        if not candidates:
            return None
        _, key = min(candidates)
        return proc.unexpected[key].popleft()

    def _match_posted(self, proc: _Proc, msg: _Message) -> Request | None:
        """Find the earliest-posted receive matching an arriving message."""
        candidates: list[tuple[float, tuple[int, int]]] = []
        for key in (
            (msg.src, msg.tag),
            (ANY_SOURCE, msg.tag),
            (msg.src, ANY_TAG),
            (ANY_SOURCE, ANY_TAG),
        ):
            queue = proc.posted.get(key)
            if queue:
                candidates.append((queue[0].post_time, key))
        if not candidates:
            return None
        _, key = min(candidates)
        return proc.posted[key].popleft()

    def _deliver(self, msg: _Message) -> None:
        """Handle arrival of an eager payload or a rendezvous RTS at the receiver."""
        proc = self.procs[msg.dst]
        recv_req = self._match_posted(proc, msg)
        if recv_req is None:
            proc.unexpected.setdefault((msg.src, msg.tag), deque()).append(msg)
        else:
            self._complete_match(proc, recv_req, msg)

    def _complete_match(self, proc: _Proc, recv_req: Request, msg: _Message) -> None:
        """A send and a receive have met; finish the transfer."""
        net = self.network
        if msg.eager:
            ready = max(recv_req.post_time, msg.arrival)
            delivered = self._extract(proc, ready, msg.nbytes, msg.src)
            self._finish_recv(proc, recv_req, msg, delivered)
        else:
            # Rendezvous handshake: CTS back to the sender, then the data.
            handshake_done = max(recv_req.post_time, msg.arrival)
            cts_arrival = handshake_done + net.latency(msg.dst, msg.src)
            sender = self.procs[msg.src]
            tx_end = self._claim_tx(sender, msg.dst, cts_arrival, msg.nbytes)
            send_req = msg.send_req
            send_req.complete_time = tx_end
            self._check_wait_done(sender)
            arrival = tx_end + net.latency(msg.src, msg.dst)

            def _arrive(m: _Message = msg, r: Request = recv_req, t: float = arrival) -> None:
                p = self.procs[m.dst]
                delivered = self._extract(p, t, m.nbytes, m.src)
                self._finish_recv(p, r, m, delivered)

            self._schedule(arrival, _arrive)

    def _claim_tx(self, proc: _Proc, dst: int, ready: float, nbytes: int) -> float:
        """Claim injection-port time: the node NIC for inter-node messages
        (when shared-NIC modelling is on), the rank's private port otherwise."""
        net = self.network
        tx_time = net.transmission_time(proc.rank, dst, nbytes)
        src_node = self._node_of[proc.rank]
        if net.shared_node_nic and src_node != self._node_of[dst]:
            start = max(ready, self._node_tx_free[src_node])
            end = start + tx_time
            self._node_tx_free[src_node] = end
        else:
            start = max(ready, proc.tx_free)
            end = start + tx_time
            proc.tx_free = end
        return end

    def _extract(self, proc: _Proc, ready: float, nbytes: int, src: int) -> float:
        """Serialize the message through the receiver's extraction port."""
        net = self.network
        if not net.rx_serialization:
            return ready
        rx_time = net.transmission_time(src, proc.rank, nbytes)
        dst_node = self._node_of[proc.rank]
        if net.shared_node_nic and self._node_of[src] != dst_node:
            rx_start = max(ready, self._node_rx_free[dst_node])
            delivered = rx_start + rx_time
            self._node_rx_free[dst_node] = delivered
        else:
            rx_start = max(ready, proc.rx_free)
            delivered = rx_start + rx_time
            proc.rx_free = delivered
        return delivered

    def _finish_recv(self, proc: _Proc, recv_req: Request, msg: _Message, when: float) -> None:
        recv_req.complete_time = when
        recv_req.payload = msg.payload
        recv_req.source_rank = msg.src
        recv_req.recv_tag = msg.tag
        self._check_wait_done(proc)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def proc_time(self, rank: int) -> float:
        """Current local simulated time of rank ``rank``."""
        return self.procs[rank].now
