"""Conservative discrete-event engine with generator-coroutine processes.

Model
-----
Each simulated MPI process is a Python generator.  The engine resumes
generators in global timestamp order; between two yields a process executes
"instantaneously" except for explicit CPU overheads that advance its local
clock.  A generator yields one of three blocking conditions:

``("sleep", dt)``
    resume ``dt`` simulated seconds later,
``("until", t)``
    resume at absolute simulated time ``t`` (or immediately if past),
``("wait", [requests])``
    resume when every :class:`Request` in the list has completed,
``("wait_any", [requests])``
    resume when at least one request has completed; the resume value is the
    index of the earliest-completing request.

Messaging follows a LogGP-flavoured cost model (see
:class:`repro.sim.network.NetworkModel`):

* the sender pays a CPU overhead ``o`` per message,
* the message occupies the sender's private *injection port* for
  ``bytes / bandwidth`` seconds (back-to-back sends serialize),
* the wire adds latency ``L`` (intra- or inter-node),
* optionally the message occupies the receiver's *extraction port*
  (incast serialization).

Messages up to the eager threshold use the *eager* protocol (the sender
never blocks on the receiver).  Larger messages use *rendezvous*: an RTS
control message travels to the receiver, the data transfer starts only once
the matching receive is posted (plus a CTS latency back), so a late receiver
stalls the sender — the first-order mechanism by which process-arrival skew
propagates through large-message collectives.

Determinism: the event heap breaks ties by insertion sequence; given the
same inputs a simulation is bit-for-bit reproducible.

One deliberate approximation: a process that is resumed at time ``T`` runs
ahead to its next blocking point, claiming port time for operations stamped
``T + k*o`` even though other heap events in ``(T, T + k*o)`` have not been
processed yet.  Port bookkeeping is a max-chain, so this can only reorder
grants within a few CPU-overhead periods (~1 µs) and never moves any event
backwards in time.

Hot-path design (what keeps 1024-rank O(p²) collectives tractable)
------------------------------------------------------------------
A p-rank linear alltoall holds ~p² requests, in-flight messages, and heap
entries alive at once, so both per-message *work* and per-message *bytes*
are on the critical path (at ~1M live messages the working set stops
fitting in cache and every pointer chase slows down):

* Exact-envelope receives match the unexpected-message queue with a single
  dict lookup; only wildcard (:data:`ANY_SOURCE`/:data:`ANY_TAG`) receives
  scan, and arriving messages probe the wildcard posted keys only while a
  wildcard receive is actually live (``_Proc.wild_posted``).
* Wait completion is countdown-based: each pending request carries
  back-pointers to its waiting fibers, so completing one request is O(1)
  instead of re-scanning the fiber's whole request list.
* Heap entries are plain ``(time, seq, kind, a, b)`` tuples dispatched by
  an integer jump in :meth:`Engine.run` — no per-event closure allocation.
* The send :class:`Request` doubles as the wire message (no separate
  message object), matching-queue dict values hold a bare request until a
  second one collides (then a deque), and a request's ``waiters`` holds a
  bare ``(fiber, epoch)`` entry until a second waiter registers.
* The cyclic GC is paused for the duration of :meth:`Engine.run`: the
  engine allocates millions of objects that die by refcount, and
  generational scans over the live graph otherwise dominate large runs.

:class:`EngineStats` counts all of this; it is surfaced on
``RunResult.engine_stats`` and in the ``max_events`` error message.
"""

from __future__ import annotations

import gc
import heapq
from collections import deque
from time import perf_counter
from typing import Any, Iterator

from repro.errors import DeadlockError, ProtocolError, SimulationError
from repro.obs.context import absorb_engine_stats as _absorb_engine_stats
from repro.obs.context import current as _obs_current
from repro.obs.context import (
    disable_process_engine_aggregation,
    enable_process_engine_aggregation,
)
from repro.obs.spans import msg_track as _msg_track
from repro.sim.network import NetworkModel

ANY_SOURCE = -1
ANY_TAG = -1

# Request kinds
_SEND = 0
_RECV = 1

# Event kinds.  Heap entries are (time, seq, kind, a, b) tuples; the integer
# kind is dispatched by a jump in Engine.run().  seq is unique, so heap
# comparisons never reach the payload fields.
_EV_START = 0    # a = fiber                   — first resume of a generator
_EV_RESUME = 1   # a = fiber, b = send value   — resume a blocked fiber
_EV_DELIVER = 2  # a = send req                — eager payload / RTS arrives
_EV_RNDV = 3     # a = send req, b = recv req  — rendezvous data arrives


class EngineStats:
    """Counters describing one (or several merged) engine runs.

    ``events_*`` split :attr:`events_total` by heap-event kind.  The match
    counters separate the O(1) fast paths from the wildcard fallbacks:
    ``match_fast``/``match_scan`` count unexpected-queue lookups by exact
    vs. wildcard receives, ``posted_fast``/``posted_wild`` count arriving
    messages probing one posted key vs. all four wildcard-candidate keys.
    ``peak_heap`` is the peak number of outstanding scheduled events
    (heap plus per-port event chains) — the in-flight-message high-water
    mark of the run.
    """

    __slots__ = (
        "events_start",
        "events_resume",
        "events_deliver",
        "events_rendezvous",
        "match_fast",
        "match_scan",
        "posted_fast",
        "posted_wild",
        "peak_heap",
        "wall_seconds",
        "runs",
    )

    def __init__(self) -> None:
        self.events_start = 0
        self.events_resume = 0
        self.events_deliver = 0
        self.events_rendezvous = 0
        self.match_fast = 0
        self.match_scan = 0
        self.posted_fast = 0
        self.posted_wild = 0
        self.peak_heap = 0
        self.wall_seconds = 0.0
        self.runs = 0

    @property
    def events_total(self) -> int:
        return (self.events_start + self.events_resume
                + self.events_deliver + self.events_rendezvous)

    @property
    def events_per_sec(self) -> float:
        """Wall-clock event throughput (0.0 before any timed run)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.events_total / self.wall_seconds

    def merge(self, other: "EngineStats") -> None:
        """Accumulate ``other`` into this instance (for cross-run aggregates)."""
        self.events_start += other.events_start
        self.events_resume += other.events_resume
        self.events_deliver += other.events_deliver
        self.events_rendezvous += other.events_rendezvous
        self.match_fast += other.match_fast
        self.match_scan += other.match_scan
        self.posted_fast += other.posted_fast
        self.posted_wild += other.posted_wild
        self.peak_heap = max(self.peak_heap, other.peak_heap)
        self.wall_seconds += other.wall_seconds
        self.runs += other.runs

    def to_dict(self) -> dict[str, float | int]:
        d: dict[str, float | int] = {name: getattr(self, name) for name in self.__slots__}
        d["events_total"] = self.events_total
        d["events_per_sec"] = self.events_per_sec
        return d

    @classmethod
    def from_dict(cls, data: dict) -> "EngineStats":
        """Rebuild stats from :meth:`to_dict` output (derived keys ignored) —
        how worker-process aggregates rejoin the parent session."""
        stats = cls()
        for name in cls.__slots__:
            setattr(stats, name, data[name])
        return stats

    def summary(self) -> str:
        """One-line human-readable digest (used in logs and error messages)."""
        return (
            f"{self.events_total} events"
            f" (start {self.events_start}, resume {self.events_resume},"
            f" deliver {self.events_deliver}, rndv {self.events_rendezvous}),"
            f" match fast/scan {self.match_fast}/{self.match_scan},"
            f" posted fast/wild {self.posted_fast}/{self.posted_wild},"
            f" peak heap {self.peak_heap},"
            f" {self.events_per_sec / 1e3:.0f}k events/s"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<EngineStats {self.summary()}>"


def enable_stats_aggregation() -> EngineStats:
    """Aggregate the stats of every subsequent in-process ``Engine.run``.

    Returns the (initially zeroed) accumulator; each completed run merges
    into it.  Worker processes of a ``--jobs N`` fan-out aggregate into
    their own interpreter, not the parent's.

    Back-compat shim: the accumulator now lives in :mod:`repro.obs.context`
    as the *process-wide* target.  New code should open a run-scoped
    ``repro.obs.session()`` instead — its ``engine_stats`` aggregate cannot
    be shared (or clobbered) by concurrent runs, which this process-wide
    singleton can.
    """
    return enable_process_engine_aggregation(EngineStats())


def disable_stats_aggregation() -> None:
    """Stop aggregating engine stats (drops the current accumulator)."""
    disable_process_engine_aggregation()


class Request:
    """Handle for a pending non-blocking operation.

    ``complete_time`` is ``None`` while the operation is in flight.  For
    receives, ``payload`` holds the received data object (or ``None`` when
    the sender attached no payload) once complete; ``source_rank`` and
    ``recv_tag`` record the matched envelope, which is what callers need when
    receiving with :data:`ANY_SOURCE` / :data:`ANY_TAG`.

    A *send* request doubles as the engine's in-flight wire message (there
    is no separate message class — at ~p² concurrent messages the second
    object per message is measurable): ``payload`` carries the data,
    ``eager`` the protocol, and ``arrival`` the wire-arrival timestamp of
    the data (eager) or the RTS (rendezvous).

    ``waiters`` holds the ``(fiber, epoch)`` back-pointers registered when a
    fiber blocks on this request — a bare entry tuple for the common single
    waiter, a list of entries otherwise.  Completion wakes exactly those
    fibers (countdown waits) instead of re-scanning their request lists.
    """

    __slots__ = (
        "kind",
        "owner",
        "peer",
        "tag",
        "nbytes",
        "complete_time",
        "payload",
        "source_rank",
        "recv_tag",
        "post_time",
        "waiters",
        "eager",
        "arrival",
        "tx_time",
        "activity",
    )

    def __init__(self, kind: int, owner: int, peer: int, tag: int, nbytes: int) -> None:
        self.kind = kind
        self.owner = owner
        self.peer = peer
        self.tag = tag
        self.nbytes = nbytes
        # Activity label of the sending fiber at post time (send requests
        # only); link records claimed at delivery/extraction time read it so
        # interleaved jobs keep their own attribution.
        self.activity: str | None = None
        self.complete_time: float | None = None
        self.payload: Any = None
        self.source_rank: int | None = None
        self.recv_tag: int | None = None
        self.post_time: float = 0.0
        self.waiters: Any = None
        self.eager = True
        self.arrival = 0.0
        # Port occupancy of this message (send requests only): the sender
        # computes it once and the receiver's extraction port reuses it —
        # transmission time is symmetric along a path.
        self.tx_time = 0.0

    @property
    def done(self) -> bool:
        return self.complete_time is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "send" if self.kind == _SEND else "recv"
        state = f"done@{self.complete_time:.9f}" if self.done else "pending"
        return f"<Request {kind} owner={self.owner} peer={self.peer} tag={self.tag} {state}>"


class _Fiber:
    """One execution strand of a simulated process.

    Every process has a *main* fiber; additional fibers model concurrently
    progressing activities of the same rank (e.g. a hardware-offloaded
    non-blocking collective).  Each fiber has its own clock and blocking
    state; fibers of one rank share the rank's ports and message queues.

    A finished fiber is itself waitable: it exposes the same
    ``kind``/``owner``/``done``/``complete_time``/``waiters`` surface as a
    :class:`Request`, so ``yield ctx.waitall(fiber)`` joins it.

    Wait bookkeeping: blocking bumps ``wait_epoch`` and registers
    ``(self, epoch)`` with each pending request; ``wait_pending`` counts the
    outstanding registrations and ``wait_deadline`` tracks the running max
    of their completion times, so the final completion resumes the fiber
    without re-scanning ``waiting``.
    """

    __slots__ = (
        "proc",
        "gen",
        "now",
        "t0",
        "waiting",
        "wait_any",
        "done",
        "blocked",
        "result",
        "complete_time",
        "kind",
        "owner",
        "waiters",
        "wait_epoch",
        "wait_pending",
        "wait_deadline",
        "activity",
    )

    def __init__(self, proc: "_Proc", gen: Iterator[Any] | None, now: float) -> None:
        self.proc = proc
        self.gen = gen
        self.now = now
        # Creation timestamp (start of the fiber's virtual-time span).
        self.t0 = now
        # Requests this fiber is currently blocked on (None when runnable).
        self.waiting: list[Request] | None = None
        # True when blocked on wait_any (first completion resumes).
        self.wait_any = False
        self.done = False
        self.blocked = False
        # Value returned by the generator (StopIteration.value).
        self.result: Any = None
        # Waitable surface (set when the fiber finishes).
        self.complete_time: float | None = None
        self.kind = _SEND  # joining is never a "foreign recv"
        self.owner = proc.rank
        self.waiters: Any = None
        self.wait_epoch = 0
        self.wait_pending = 0
        self.wait_deadline = 0.0
        # Activity label this fiber is currently inside (None = raw p2p);
        # restored into ``engine.activity`` on every resume so interleaved
        # fibers (multi-job runs) do not blur each other's link attribution.
        self.activity: str | None = None

    @property
    def rank(self) -> int:
        return self.proc.rank


class _Proc:
    """Engine-internal rank-level state (ports, queues, fibers).

    The matching dicts map ``(src, tag)`` to *either* a single entry (the
    overwhelmingly common case — one pending item per envelope) *or* a
    deque of entries once a second one collides.  Keys are removed as soon
    as their last entry is taken, so dict size tracks live entries even
    across long multi-collective programs, and the wildcard scan never
    visits dead keys.
    """

    __slots__ = (
        "rank",
        "fibers",
        "tx_free",
        "rx_free",
        "unexpected",
        "posted",
        "wild_posted",
    )

    def __init__(self, rank: int) -> None:
        self.rank = rank
        self.fibers: list[_Fiber] = [_Fiber(self, None, 0.0)]
        self.tx_free = 0.0
        self.rx_free = 0.0
        # (src, tag) -> arrived-but-unmatched send request, or deque thereof.
        self.unexpected: dict[tuple[int, int], Any] = {}
        # (src, tag) -> posted-but-unmatched recv request, or deque thereof.
        self.posted: dict[tuple[int, int], Any] = {}
        # Number of live posted receives whose key contains a wildcard;
        # while zero, arriving messages probe only their exact key.
        self.wild_posted = 0

    @property
    def main(self) -> _Fiber:
        return self.fibers[0]

    @property
    def now(self) -> float:
        """The main fiber's clock (rank-level convenience view)."""
        return self.main.now

    @property
    def done(self) -> bool:
        return all(f.done for f in self.fibers)

    @property
    def result(self) -> Any:
        return self.main.result


class Engine:
    """Discrete-event simulator for a fixed set of message-passing processes.

    Parameters
    ----------
    num_procs:
        Number of simulated MPI ranks.
    network:
        The :class:`~repro.sim.network.NetworkModel` that prices messages.
    max_events:
        Safety valve against runaway simulations; exceeding it raises
        :class:`SimulationError`.
    """

    def __init__(self, num_procs: int, network: NetworkModel, max_events: int = 200_000_000):
        if num_procs <= 0:
            raise ProtocolError(f"num_procs must be positive, got {num_procs}")
        self.num_procs = num_procs
        self.network = network
        self.max_events = max_events
        self.procs = [_Proc(rank) for rank in range(num_procs)]
        self._heap: list[tuple[float, int, int, Any, Any, Any]] = []
        self._seq = 0
        self._events_processed = 0
        self._outstanding = 0
        self.now = 0.0
        self.stats = EngineStats()
        # Flow-level fast path (repro.sim.flow).  ``flow_runtime`` is
        # attached by build_engine when a non-exact FlowConfig is supplied;
        # ``activity`` names the collective/algorithm currently executing
        # (best effort, for error reporting only).
        self.flow_runtime = None
        self.activity: str | None = None
        # Per-port event chains: deliveries leaving one injection port with
        # one wire latency are scheduled in non-decreasing (time, seq) order
        # (port grants max-chain forward), so they live in a FIFO bucket with
        # only the head in the heap.  This keeps the heap at O(ports) instead
        # of O(messages-in-flight) — the difference between log2(~2k) and
        # log2(~1M) comparisons per pop in a 1024-rank linear alltoall.
        self._chains: dict[Any, deque] = {}
        # Shared per-node NIC ports for inter-node traffic (see NetworkModel).
        self._node_tx_free = [0.0] * network.num_nodes
        self._node_rx_free = [0.0] * network.num_nodes
        self._node_of = network.node_of
        self._group_of = network.group_of
        # Run-scoped observability (repro.obs).  Captured once at engine
        # construction; None unless a session with span recording is open,
        # so the disabled-mode cost on fiber completion is one None check.
        octx = _obs_current()
        self._obs = octx if (octx.enabled and octx.record_spans) else None
        # Per-message spans (sender post -> receiver completion) feed the
        # comm-volume and critical-path analyses; opt-in via the session's
        # record_messages flag because they are O(messages) in volume.
        self._obs_msg = self._obs if (self._obs is not None
                                      and octx.record_messages) else None
        # Fabric link recorder (repro.obs.linkstats).  None unless the
        # session opted into link recording: every port claim would record
        # one tuple, so the disabled path must stay a single None check.
        self._obs_link = octx.links if octx.enabled else None

    # ------------------------------------------------------------------ #
    # Event plumbing
    # ------------------------------------------------------------------ #

    def _schedule(self, time: float, kind: int, a: Any, b: Any = None) -> None:
        """Push an event directly onto the heap (resumes, starts, fallbacks)."""
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, kind, a, b, None))
        out = self._outstanding + 1
        self._outstanding = out
        if out > self.stats.peak_heap:
            self.stats.peak_heap = out

    def _schedule_chained(self, key: Any, time: float, kind: int, a: Any,
                          b: Any = None) -> None:
        """Schedule an event on the sorted FIFO chain identified by ``key``.

        Only the chain head sits in the heap; :meth:`run` promotes the next
        entry when it pops the head.  Each chain must stay sorted — an entry
        that would land out of order (e.g. a sibling fiber with an earlier
        clock reusing a port chain) bypasses the chain and goes straight to
        the heap, which is always correct: pop order only requires that every
        chain's minimum is heap-visible.
        """
        chains = self._chains
        bucket = chains.get(key)
        if bucket is None:
            chains[key] = bucket = deque()
        self._seq += 1
        if bucket:
            if time >= bucket[-1][0]:
                bucket.append((time, self._seq, kind, a, b, bucket))
            else:
                heapq.heappush(self._heap, (time, self._seq, kind, a, b, None))
        else:
            entry = (time, self._seq, kind, a, b, bucket)
            bucket.append(entry)
            heapq.heappush(self._heap, entry)
        out = self._outstanding + 1
        self._outstanding = out
        if out > self.stats.peak_heap:
            self.stats.peak_heap = out

    def set_process(self, rank: int, gen: Iterator[Any]) -> None:
        """Install the generator driving rank ``rank`` and schedule its start."""
        proc = self.procs[rank]
        main = proc.main
        if main.gen is not None:
            raise ProtocolError(f"process {rank} already has a generator")
        main.gen = gen
        self._schedule(main.now, _EV_START, main)

    def spawn_fiber(self, rank: int, gen: Iterator[Any] | None,
                    start_time: float) -> _Fiber:
        """Start an additional concurrently progressing fiber on ``rank``.

        The fiber shares the rank's ports and message queues but has its own
        clock, starting at ``start_time``.  The returned fiber is waitable
        (``yield ctx.waitall(fiber)``) from fibers of the same rank.
        ``gen`` may be installed after the call (before the engine first
        resumes the fiber).
        """
        proc = self.procs[rank]
        fiber = _Fiber(proc, gen, start_time)
        proc.fibers.append(fiber)
        self._schedule(start_time, _EV_START, fiber)
        return fiber

    def run(self) -> float:
        """Run the simulation to completion; return the final simulated time.

        Raises :class:`DeadlockError` if the event heap drains while some
        processes are still blocked on requests that can never complete.
        """
        for proc in self.procs:
            if proc.main.gen is None:
                raise ProtocolError(f"process {proc.rank} has no generator installed")
        stats = self.stats
        heap = self._heap
        pop = heapq.heappop
        push = heapq.heappush
        max_events = self.max_events
        events = self._events_processed
        n_start = n_resume = n_deliver = n_rndv = 0
        # Pause the cyclic GC: nearly everything allocated here dies by
        # refcount, and generational scans over millions of live requests
        # and heap entries otherwise dominate large runs.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        started = perf_counter()
        try:
            while heap:
                time, _seq, kind, a, b, bucket = pop(heap)
                if bucket is not None:
                    # Popped a chain head: promote the chain's next entry.
                    bucket.popleft()
                    if bucket:
                        push(heap, bucket[0])
                self._outstanding -= 1
                if time < self.now - 1e-15:
                    raise SimulationError(
                        f"causality violation: event at {time} before clock {self.now}"
                    )
                if time > self.now:
                    self.now = time
                events += 1
                if events > max_events:
                    raise SimulationError(
                        self._max_events_message(
                            n_start, n_resume, n_deliver, n_rndv
                        )
                    )
                if kind == _EV_RESUME:
                    n_resume += 1
                    self._resume(a, b)
                elif kind == _EV_DELIVER:
                    n_deliver += 1
                    self._deliver(a)
                elif kind == _EV_RNDV:
                    n_rndv += 1
                    proc = self.procs[a.peer]
                    delivered = self._extract(proc, time, a.nbytes, a.owner,
                                              a.activity)
                    self._finish_recv(proc, b, a, delivered)
                else:  # _EV_START
                    n_start += 1
                    self._resume(a, first=True)
        finally:
            if gc_was_enabled:
                gc.enable()
            self._events_processed = events
            stats.events_start += n_start
            stats.events_resume += n_resume
            stats.events_deliver += n_deliver
            stats.events_rendezvous += n_rndv
            stats.wall_seconds += perf_counter() - started
            stats.runs += 1
            # Reports into the run-scoped obs session (if any) and the
            # legacy process-wide accumulator (if enabled).
            _absorb_engine_stats(stats)
        blocked = [p.rank for p in self.procs if not p.done]
        if blocked:
            raise DeadlockError(blocked)
        return self.now

    def _max_events_message(self, n_start: int, n_resume: int,
                            n_deliver: int, n_rndv: int) -> str:
        msg = f"exceeded max_events={self.max_events} [{self.stats.summary()}]"
        if self.activity:
            msg += f" while running {self.activity}"
        per_message = n_deliver + n_rndv
        total = n_start + n_resume + per_message
        if total and per_message * 2 >= total:
            msg += (
                "; most events are per-message deliveries, which suggests a "
                "regular bulk phase blew the budget — consider "
                "--engine-mode hybrid (repro.sim.flow) to collapse it "
                "into analytic flow batches"
            )
        return msg

    # ------------------------------------------------------------------ #
    # Process execution
    # ------------------------------------------------------------------ #

    def _resume(self, fiber: _Fiber, value: Any = None, first: bool = False) -> None:
        """Advance ``fiber``'s generator until its next blocking condition."""
        if fiber.done:
            raise ProtocolError(f"resuming finished fiber of process {fiber.rank}")
        fiber.blocked = False
        # Synchronous claims (post_isend) made while this fiber runs must
        # carry *its* activity, not whichever fiber resumed last.
        self.activity = fiber.activity
        gen = fiber.gen
        assert gen is not None
        try:
            condition = next(gen) if first else gen.send(value)
        except StopIteration as stop:
            fiber.done = True
            fiber.result = stop.value
            fiber.complete_time = fiber.now
            obs = self._obs
            if obs is not None:
                name = "program" if fiber is fiber.proc.fibers[0] else "fiber"
                obs.record_rank_span(name, fiber.rank, fiber.t0, fiber.now)
            # Joiners (other fibers of this rank) may be waiting on us.
            self._notify_waiters(fiber)
            return
        self._apply_condition(fiber, condition)

    def _apply_condition(self, fiber: _Fiber, condition: Any) -> None:
        try:
            kind = condition[0]
        except (TypeError, IndexError):
            raise ProtocolError(
                f"process {fiber.rank} yielded invalid condition {condition!r}"
            ) from None
        if kind == "wait" or kind == "wait_any":
            requests: list[Request] = condition[1]
            any_mode = kind == "wait_any"
            for req in requests:
                if req.kind == _RECV and req.owner != fiber.rank:
                    raise ProtocolError(
                        f"process {fiber.rank} waiting on foreign recv of rank {req.owner}"
                    )
            if any_mode:
                done_times = [
                    (r.complete_time, i) for i, r in enumerate(requests)
                    if r.complete_time is not None
                ]
                if done_times:
                    when, index = min(done_times)
                    resume_at = max(fiber.now, when)
                    fiber.now = resume_at
                    self._schedule(resume_at, _EV_RESUME, fiber, index)
                else:
                    self._block(fiber, requests, any_mode=True)
                return
            if self._block(fiber, requests, any_mode=False):
                return
            # Every request already complete: resume after the latest one.
            resume_at = fiber.wait_deadline
            fiber.now = resume_at
            self._schedule(resume_at, _EV_RESUME, fiber, None)
        elif kind == "sleep":
            dt = condition[1]
            if dt < 0:
                raise ProtocolError(f"process {fiber.rank} slept for negative time {dt}")
            fiber.now += dt
            self._schedule(fiber.now, _EV_RESUME, fiber, None)
        elif kind == "until":
            target = condition[1]
            if target > fiber.now:
                fiber.now = target
            self._schedule(fiber.now, _EV_RESUME, fiber, None)
        elif kind == "flow_gate":
            # Flow-level phase barrier (repro.sim.flow): the fiber parks in
            # the gate; the last arrival replays the whole phase and
            # schedules every member's resume at its computed exit time.
            fiber.blocked = True
            fiber.waiting = None
            fiber.wait_any = False
            condition[1].arrive(fiber)
        else:
            raise ProtocolError(
                f"process {fiber.rank} yielded unknown condition {condition!r}"
            )

    def _block(self, fiber: _Fiber, requests: list[Request], any_mode: bool) -> bool:
        """Register ``fiber`` as a waiter on every pending request.

        Returns True if the fiber actually blocked.  For ``waitall`` with no
        pending requests it returns False, leaving ``fiber.wait_deadline`` at
        the resume time (max of ``fiber.now`` and all completion times).
        A request listed twice registers twice *and* counts twice, so the
        countdown stays consistent for duplicates.
        """
        fiber.wait_epoch += 1
        entry = (fiber, fiber.wait_epoch)
        if any_mode:
            # Caller guarantees no request is complete yet.
            for r in requests:
                w = r.waiters
                if w is None:
                    r.waiters = entry
                elif type(w) is list:
                    w.append(entry)
                else:
                    r.waiters = [w, entry]
            fiber.waiting = requests
            fiber.wait_any = True
            fiber.blocked = True
            return True
        pending = 0
        deadline = fiber.now
        for r in requests:
            ct = r.complete_time
            if ct is not None:
                if ct > deadline:
                    deadline = ct
                continue
            pending += 1
            w = r.waiters
            if w is None:
                r.waiters = entry
            elif type(w) is list:
                w.append(entry)
            else:
                r.waiters = [w, entry]
        fiber.wait_deadline = deadline
        if pending == 0:
            return False
        fiber.wait_pending = pending
        fiber.waiting = requests
        fiber.wait_any = False
        fiber.blocked = True
        return True

    def _notify_waiters(self, req: Request | _Fiber) -> None:
        """A request (or fiber handle) completed: wake its registered waiters.

        Countdown completion — O(1) per (request, waiter) pair.  Stale
        registrations (the fiber has since resumed and re-blocked) are
        filtered by the epoch check in :meth:`_wake`.
        """
        w = req.waiters
        if w is None:
            return
        req.waiters = None
        if type(w) is tuple:  # single (fiber, epoch) entry — the common case
            fiber = w[0]
            if w[1] != fiber.wait_epoch or not fiber.blocked:
                return  # stale registration from an earlier wait
            if fiber.wait_any:
                self._wake(fiber, w[1], req)
                return
            # Inlined countdown step: this is once-per-message in collectives.
            ct = req.complete_time
            if ct > fiber.wait_deadline:
                fiber.wait_deadline = ct
            pending = fiber.wait_pending - 1
            fiber.wait_pending = pending
            if pending == 0:
                resume_at = fiber.wait_deadline
                fiber.waiting = None
                fiber.blocked = False
                fiber.now = resume_at
                self._schedule(resume_at, _EV_RESUME, fiber, None)
        else:
            for fiber, epoch in w:
                self._wake(fiber, epoch, req)

    def _wake(self, fiber: _Fiber, epoch: int, req: Request | _Fiber) -> None:
        if epoch != fiber.wait_epoch or not fiber.blocked:
            return  # stale registration from an earlier wait
        if fiber.wait_any:
            # First completion for this wait: pick the earliest-completed
            # index (scans once; duplicates resolve to the lowest index).
            done_times = [
                (r.complete_time, i) for i, r in enumerate(fiber.waiting)
                if r.complete_time is not None
            ]
            when, index = min(done_times)
            resume_at = fiber.now if fiber.now > when else when
            fiber.waiting = None
            fiber.wait_any = False
            fiber.blocked = False
            fiber.now = resume_at
            self._schedule(resume_at, _EV_RESUME, fiber, index)
        else:
            ct = req.complete_time
            if ct > fiber.wait_deadline:
                fiber.wait_deadline = ct
            fiber.wait_pending -= 1
            if fiber.wait_pending == 0:
                resume_at = fiber.wait_deadline
                fiber.waiting = None
                fiber.blocked = False
                fiber.now = resume_at
                self._schedule(resume_at, _EV_RESUME, fiber, None)

    # ------------------------------------------------------------------ #
    # Point-to-point messaging
    # ------------------------------------------------------------------ #

    def post_isend(
        self, src: int, dst: int, nbytes: int, tag: int, payload: Any = None,
        sync: bool = False, fiber: _Fiber | None = None,
    ) -> Request:
        """Post a non-blocking send from ``src``'s current local time.

        ``sync=True`` forces the rendezvous protocol regardless of size
        (``MPI_Issend`` semantics): the send cannot complete before the
        matching receive is posted.  ``fiber`` selects which of the rank's
        fibers posts (and pays the CPU overhead); default is the main fiber.
        """
        if not (0 <= dst < self.num_procs):
            raise ProtocolError(f"isend to invalid rank {dst}")
        if nbytes < 0:
            raise ProtocolError(f"isend with negative size {nbytes}")
        if tag < 0:
            raise ProtocolError(f"isend with negative tag {tag} (reserved for wildcards)")
        proc = self.procs[src]
        fib = fiber if fiber is not None else proc.fibers[0]
        net = self.network
        # Built field-by-field (not via __init__): two requests per message
        # make the constructor call overhead itself measurable at scale.
        req = Request.__new__(Request)
        req.kind = _SEND
        req.owner = src
        req.peer = dst
        req.tag = tag
        req.nbytes = nbytes
        req.payload = payload
        req.source_rank = None
        req.recv_tag = None
        req.waiters = None
        req.post_time = fib.now
        req.activity = self.activity
        fib.now += net.send_overhead
        if nbytes <= net.eager_max and not sync:
            # Inlined cost model + injection-port claim.  The link class
            # (self / intra / inter / group) picks latency and bandwidth; the
            # port is the node NIC for inter-node traffic under shared-NIC
            # modelling, the rank's private port otherwise.  Chain key =
            # port index and class packed into one int (no tuple per send).
            node_of = self._node_of
            src_node = node_of[src]
            ready = fib.now
            if src_node == node_of[dst]:
                if src == dst:
                    lat = 0.0
                    tx_time = 0.0
                    ckey = src << 2
                else:
                    lat = net.intra_lat
                    tx_time = nbytes * net.intra_inv_bw
                    ckey = (src << 2) | 1
                start = proc.tx_free
                if ready > start:
                    start = ready
                tx_end = start + tx_time
                proc.tx_free = tx_end
            else:
                group_of = self._group_of
                if group_of[src] == group_of[dst]:
                    lat = net.inter_lat
                    tx_time = nbytes * net.inter_inv_bw
                    cls = 2
                else:
                    lat = net.group_lat
                    tx_time = nbytes * net.group_inv_bw
                    cls = 3
                if net.shared_node_nic:
                    free = self._node_tx_free
                    start = free[src_node]
                    if ready > start:
                        start = ready
                    tx_end = start + tx_time
                    free[src_node] = tx_end
                    ckey = ((self.num_procs + src_node) << 2) | cls
                else:
                    start = proc.tx_free
                    if ready > start:
                        start = ready
                    tx_end = start + tx_time
                    proc.tx_free = tx_end
                    ckey = (src << 2) | cls
            req.eager = True
            req.tx_time = tx_time
            req.complete_time = tx_end
            req.arrival = arrival = tx_end + lat
            self._schedule_chained(ckey, arrival, _EV_DELIVER, req)
            links = self._obs_link
            if links is not None and ckey & 3:
                # ckey packs (port index << 2) | class; self-sends have
                # class 0 and claim no port time, so they fall through.
                # Inlined LinkStatsRecorder.record: this is the exact
                # engine's hottest path and a bound-method call per
                # message would dominate the recording cost.
                recs = links.records
                if len(recs) == links.capacity:
                    links.dropped += 1
                pidx = ckey >> 2
                recs.append((
                    pidx if pidx < self.num_procs
                    else self.num_procs - 1 - pidx,
                    ckey & 3, 0, start, tx_end, tx_end - start, nbytes, 1,
                    start - ready, self.activity,
                ))
        else:
            # Rendezvous: the RTS travels now; data moves once matched.
            lat = net.latency(src, dst)
            req.eager = False
            req.tx_time = 0.0
            req.complete_time = None
            req.arrival = arrival = fib.now + lat
            self._schedule_chained(("rts", src, lat), arrival, _EV_DELIVER, req)
        return req

    def post_irecv(self, dst: int, src: int, tag: int, nbytes: int = 0,
                   fiber: _Fiber | None = None) -> Request:
        """Post a non-blocking receive at ``dst``'s current local time.

        ``src`` may be :data:`ANY_SOURCE` and ``tag`` may be :data:`ANY_TAG`.
        """
        if src != ANY_SOURCE and not (0 <= src < self.num_procs):
            raise ProtocolError(f"irecv from invalid rank {src}")
        if tag != ANY_TAG and tag < 0:
            raise ProtocolError(f"irecv with negative tag {tag} (use ANY_TAG to wildcard)")
        if nbytes < 0:
            raise ProtocolError(f"irecv with negative size {nbytes}")
        proc = self.procs[dst]
        fib = fiber if fiber is not None else proc.fibers[0]
        req = Request.__new__(Request)
        req.kind = _RECV
        req.owner = dst
        req.peer = src
        req.tag = tag
        req.nbytes = nbytes
        req.complete_time = None
        req.payload = None
        req.source_rank = None
        req.recv_tag = None
        req.waiters = None
        req.eager = True
        req.arrival = 0.0
        req.post_time = fib.now
        fib.now += self.network.recv_overhead
        key = (src, tag)
        if src != ANY_SOURCE and tag != ANY_TAG:
            # Exact envelope: one dict probe against the unexpected queue.
            self.stats.match_fast += 1
            unexpected = proc.unexpected
            cur = unexpected.get(key)
            if cur is None:
                msg = None
            elif type(cur) is deque:
                msg = cur.popleft()
                if not cur:
                    del unexpected[key]
            else:
                msg = cur
                del unexpected[key]
        else:
            msg = self._match_unexpected_wild(proc, src, tag)
        if msg is not None:
            self._complete_match(proc, req, msg)
        else:
            posted = proc.posted
            cur = posted.get(key)
            if cur is None:
                posted[key] = req
            elif type(cur) is deque:
                cur.append(req)
            else:
                posted[key] = deque((cur, req))
            if src == ANY_SOURCE or tag == ANY_TAG:
                proc.wild_posted += 1
        return req

    # -- matching ------------------------------------------------------- #

    @staticmethod
    def _queue_pop(table: dict, key: tuple[int, int], cur: Any) -> Any:
        """Take the head entry for ``key`` (a bare entry or a deque head),
        pruning the key as soon as it empties."""
        if type(cur) is deque:
            head = cur.popleft()
            if not cur:
                del table[key]
            return head
        del table[key]
        return cur

    def _match_unexpected_wild(self, proc: _Proc, src: int, tag: int) -> Request | None:
        """Scan the unexpected queues for a wildcard receive: the
        earliest-*arrived* matching message wins.  Exact envelopes never get
        here — they resolve with one dict probe in :meth:`post_irecv`
        (messages always carry concrete envelopes, so an exact receive can
        match exactly one key)."""
        self.stats.match_scan += 1
        unexpected = proc.unexpected
        candidates: list[tuple[float, tuple[int, int]]] = []
        for (msrc, mtag), cur in unexpected.items():
            if (src == ANY_SOURCE or msrc == src) and (tag == ANY_TAG or mtag == tag):
                head = cur[0] if type(cur) is deque else cur
                candidates.append((head.arrival, (msrc, mtag)))
        if not candidates:
            return None
        _, key = min(candidates)
        return self._queue_pop(unexpected, key, unexpected[key])

    def _match_posted_wild(self, proc: _Proc, msg: Request) -> Request | None:
        """Match an arriving message while wildcard receives are live
        (``wild_posted > 0``): all four candidate keys are probed and the
        earliest post wins (ties break toward the wildcard key, whose tuple
        sorts first — deterministic either way)."""
        self.stats.posted_wild += 1
        posted = proc.posted
        candidates: list[tuple[float, tuple[int, int]]] = []
        for key in (
            (msg.owner, msg.tag),
            (ANY_SOURCE, msg.tag),
            (msg.owner, ANY_TAG),
            (ANY_SOURCE, ANY_TAG),
        ):
            cur = posted.get(key)
            if cur is not None:
                head = cur[0] if type(cur) is deque else cur
                candidates.append((head.post_time, key))
        if not candidates:
            return None
        _, key = min(candidates)
        req = self._queue_pop(posted, key, posted[key])
        if key[0] == ANY_SOURCE or key[1] == ANY_TAG:
            proc.wild_posted -= 1
        return req

    def _deliver(self, msg: Request) -> None:
        """Handle arrival of an eager payload or a rendezvous RTS at the
        receiver.  The exact-envelope eager case — essentially every message
        of a collective — runs fully inlined: one posted-queue probe,
        extraction-port claim, receive completion, waiter notification."""
        proc = self.procs[msg.peer]
        if not proc.wild_posted:
            self.stats.posted_fast += 1
            key = (msg.owner, msg.tag)
            posted = proc.posted
            cur = posted.get(key)
            if cur is None:
                recv_req = None
            elif type(cur) is deque:
                recv_req = cur.popleft()
                if not cur:
                    del posted[key]
            else:
                recv_req = cur
                del posted[key]
        else:
            recv_req = self._match_posted_wild(proc, msg)
        if recv_req is None:
            key = (msg.owner, msg.tag)
            unexpected = proc.unexpected
            cur = unexpected.get(key)
            if cur is None:
                unexpected[key] = msg
            elif type(cur) is deque:
                cur.append(msg)
            else:
                unexpected[key] = deque((cur, msg))
        elif msg.eager:
            ready = recv_req.post_time
            if msg.arrival > ready:
                ready = msg.arrival
            # Inlined extraction-port claim; the sender already computed the
            # (symmetric) port occupancy in msg.tx_time.
            net = self.network
            if net.rx_serialization:
                node_of = self._node_of
                dst_node = node_of[msg.peer]
                if net.shared_node_nic and node_of[msg.owner] != dst_node:
                    free = self._node_rx_free
                    start = free[dst_node]
                    if ready > start:
                        start = ready
                    end = start + msg.tx_time
                    free[dst_node] = end
                    links = self._obs_link
                    if links is not None:
                        # Inlined extraction-port record (see post_isend):
                        # shared-NIC rx means inter-node, so the class is
                        # 2 (same group) or 3 (cross-group) directly.
                        recs = links.records
                        if len(recs) == links.capacity:
                            links.dropped += 1
                        group_of = self._group_of
                        recs.append((
                            -1 - dst_node,
                            2 if group_of[msg.owner] == group_of[msg.peer]
                            else 3,
                            1, start, end, end - start, msg.nbytes, 1,
                            start - ready, msg.activity,
                        ))
                    ready = end
                else:
                    start = proc.rx_free
                    if ready > start:
                        start = ready
                    end = start + msg.tx_time
                    proc.rx_free = end
                    links = self._obs_link
                    if links is not None and msg.owner != msg.peer:
                        recs = links.records
                        if len(recs) == links.capacity:
                            links.dropped += 1
                        if node_of[msg.owner] == dst_node:
                            cls = 1
                        else:
                            group_of = self._group_of
                            cls = (2 if group_of[msg.owner]
                                   == group_of[msg.peer] else 3)
                        recs.append((
                            msg.peer, cls, 1, start, end, end - start,
                            msg.nbytes, 1, start - ready, msg.activity,
                        ))
                    ready = end
            recv_req.complete_time = ready
            recv_req.payload = msg.payload
            recv_req.source_rank = msg.owner
            recv_req.recv_tag = msg.tag
            if self._obs_msg is not None:
                self._record_msg(msg, ready)
            self._notify_waiters(recv_req)
        else:
            self._complete_match(proc, recv_req, msg)

    def _complete_match(self, proc: _Proc, recv_req: Request, msg: Request) -> None:
        """A send and a receive have met; finish the transfer."""
        net = self.network
        if msg.eager:
            ready = max(recv_req.post_time, msg.arrival)
            delivered = self._extract(proc, ready, msg.nbytes, msg.owner,
                                      msg.activity)
            self._finish_recv(proc, recv_req, msg, delivered)
        else:
            # Rendezvous handshake: CTS back to the sender, then the data.
            src, dst = msg.owner, msg.peer
            handshake_done = max(recv_req.post_time, msg.arrival)
            cts_arrival = handshake_done + net.latency(dst, src)
            tx_end, port = self._claim_tx(self.procs[src], dst, cts_arrival,
                                          msg.nbytes, msg.activity)
            msg.complete_time = tx_end
            self._notify_waiters(msg)
            lat = net.latency(src, dst)
            self._schedule_chained((port, lat), tx_end + lat, _EV_RNDV, msg, recv_req)

    def _claim_tx(self, proc: _Proc, dst: int, ready: float, nbytes: int,
                  activity: str | None = None) -> tuple[float, int]:
        """Claim injection-port time: the node NIC for inter-node messages
        (when shared-NIC modelling is on), the rank's private port otherwise.
        Returns ``(grant_end, port_index)``; the port index keys the delivery
        event chain (node ports follow the rank ports in the index space)."""
        net = self.network
        tx_time = net.transmission_time(proc.rank, dst, nbytes)
        src_node = self._node_of[proc.rank]
        if net.shared_node_nic and src_node != self._node_of[dst]:
            start = max(ready, self._node_tx_free[src_node])
            end = start + tx_time
            self._node_tx_free[src_node] = end
            links = self._obs_link
            if links is not None:
                # Inlined record (see post_isend): the rendezvous CTS path
                # claims one injection port per data message.  Shared-NIC
                # means inter-node, so the class is 2 or 3 directly.
                recs = links.records
                if len(recs) == links.capacity:
                    links.dropped += 1
                group_of = self._group_of
                recs.append((
                    -1 - src_node,
                    2 if group_of[proc.rank] == group_of[dst] else 3,
                    0, start, end, end - start, nbytes, 1, start - ready,
                    activity,
                ))
            return end, self.num_procs + src_node
        start = max(ready, proc.tx_free)
        end = start + tx_time
        proc.tx_free = end
        links = self._obs_link
        if links is not None and proc.rank != dst:
            recs = links.records
            if len(recs) == links.capacity:
                links.dropped += 1
            if src_node == self._node_of[dst]:
                cls = 1
            else:
                group_of = self._group_of
                cls = 2 if group_of[proc.rank] == group_of[dst] else 3
            recs.append((
                proc.rank, cls, 0, start, end, end - start, nbytes, 1,
                start - ready, activity,
            ))
        return end, proc.rank

    def _extract(self, proc: _Proc, ready: float, nbytes: int, src: int,
                 activity: str | None = None) -> float:
        """Serialize the message through the receiver's extraction port."""
        net = self.network
        if not net.rx_serialization:
            return ready
        rx_time = net.transmission_time(src, proc.rank, nbytes)
        dst_node = self._node_of[proc.rank]
        if net.shared_node_nic and self._node_of[src] != dst_node:
            rx_start = max(ready, self._node_rx_free[dst_node])
            delivered = rx_start + rx_time
            self._node_rx_free[dst_node] = delivered
            port = -1 - dst_node
        else:
            rx_start = max(ready, proc.rx_free)
            delivered = rx_start + rx_time
            proc.rx_free = delivered
            port = proc.rank
        links = self._obs_link
        if links is not None and src != proc.rank:
            recs = links.records
            if len(recs) == links.capacity:
                links.dropped += 1
            if self._node_of[src] == dst_node:
                cls = 1
            else:
                group_of = self._group_of
                cls = 2 if group_of[src] == group_of[proc.rank] else 3
            recs.append((
                port, cls, 1, rx_start, delivered, delivered - rx_start,
                nbytes, 1, rx_start - ready, activity,
            ))
        return delivered

    def _finish_recv(self, proc: _Proc, recv_req: Request, msg: Request, when: float) -> None:
        recv_req.complete_time = when
        recv_req.payload = msg.payload
        recv_req.source_rank = msg.owner
        recv_req.recv_tag = msg.tag
        if self._obs_msg is not None:
            self._record_msg(msg, when)
        self._notify_waiters(recv_req)

    def _record_msg(self, msg: Request, delivered: float) -> None:
        """Record one delivered message (sender post to receiver completion)
        on the receiver's message track.  Every eager and rendezvous
        completion path funnels through here when message recording is on."""
        self._obs_msg.record_vspan(
            "msg", _msg_track(msg.peer), msg.post_time, delivered,
            args={"src": msg.owner, "dst": msg.peer, "bytes": msg.nbytes,
                  "tag": msg.tag},
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def proc_time(self, rank: int) -> float:
        """Current local simulated time of rank ``rank``."""
        return self.procs[rank].now
