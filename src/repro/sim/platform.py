"""Cluster topology descriptions and machine presets.

A :class:`Platform` is a two-level hierarchy — ``nodes`` compute nodes with
``cores_per_node`` cores each — matching the paper's simulation platform and
the three production machines of Table I.  Ranks are mapped to nodes in
block order (rank ``i`` runs on node ``i // cores_per_node``), the usual
``--map-by core`` layout.

The presets deliberately scale *node counts* down (the paper uses 32 x 32 =
1024 ranks; pure-Python simulation of O(p^2) collectives at that scale is
impractical for full parameter sweeps) while keeping each machine's relative
network characteristics: Hydra is an Omni-Path 100 Gbit/s system, Galileo100
an InfiniBand HDR100 system with a noisier interconnect, Discoverer an HDR
Dragonfly+ system with lower effective latency.  See DESIGN.md for the scale
substitution argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Platform:
    """A hierarchical cluster: ``nodes`` x ``cores_per_node`` ranks.

    ``nodes_per_group`` optionally adds a third level (e.g. Dragonfly+
    groups or fat-tree pods): nodes in the same group communicate over the
    inter-node link, nodes in different groups over the (typically slower)
    inter-group link.  ``None`` keeps the classic two-level hierarchy.
    """

    name: str
    nodes: int
    cores_per_node: int
    nodes_per_group: int | None = None

    def __post_init__(self) -> None:
        if self.nodes <= 0 or self.cores_per_node <= 0:
            raise ConfigurationError(
                f"platform {self.name!r} needs positive nodes/cores, "
                f"got {self.nodes} x {self.cores_per_node}"
            )
        if self.nodes_per_group is not None and self.nodes_per_group <= 0:
            raise ConfigurationError(
                f"platform {self.name!r}: nodes_per_group must be positive"
            )

    @property
    def num_ranks(self) -> int:
        return self.nodes * self.cores_per_node

    def node_of_rank(self, rank: int) -> int:
        if not (0 <= rank < self.num_ranks):
            raise ConfigurationError(f"rank {rank} out of range for {self.name}")
        return rank // self.cores_per_node

    def node_of_rank_table(self) -> list[int]:
        """Flat rank -> node lookup table for the network model's hot path."""
        return [r // self.cores_per_node for r in range(self.num_ranks)]

    def ranks_of_node(self, node: int) -> range:
        if not (0 <= node < self.nodes):
            raise ConfigurationError(f"node {node} out of range for {self.name}")
        start = node * self.cores_per_node
        return range(start, start + self.cores_per_node)

    @property
    def num_groups(self) -> int:
        if self.nodes_per_group is None:
            return 1
        return (self.nodes + self.nodes_per_group - 1) // self.nodes_per_group

    def group_of_node(self, node: int) -> int:
        if not (0 <= node < self.nodes):
            raise ConfigurationError(f"node {node} out of range for {self.name}")
        if self.nodes_per_group is None:
            return 0
        return node // self.nodes_per_group

    def group_of_rank_table(self) -> list[int]:
        """Flat rank -> group lookup table."""
        return [self.group_of_node(n) for n in self.node_of_rank_table()]

    def scaled(self, nodes: int | None = None, cores_per_node: int | None = None) -> "Platform":
        """A copy with a different size (used to scale experiments up/down)."""
        return replace(
            self,
            nodes=self.nodes if nodes is None else nodes,
            cores_per_node=self.cores_per_node if cores_per_node is None else cores_per_node,
        )


@dataclass(frozen=True)
class MachineSpec:
    """Bundle of everything that characterizes one experimental machine.

    ``network`` fields are stored as a plain dict so :mod:`repro.sim.network`
    can stay import-independent of this module's preset table; use
    :func:`get_machine` to obtain constructed objects.
    """

    platform: Platform
    network: dict = field(default_factory=dict)
    noise_profile: str = "quiet"
    description: str = ""
    mpi_version: str = ""
    interconnect: str = ""


def _gbit(gbits: float) -> float:
    """Gigabits/s -> bytes/s."""
    return gbits * 1e9 / 8.0


#: Machine presets.  ``simcluster`` is the Section III-A simulation platform;
#: the other three are analogues of the paper's Table I machines.  Node
#: counts default to a tractable scale; experiment drivers may rescale.
MACHINES: dict[str, MachineSpec] = {
    "simcluster": MachineSpec(
        platform=Platform("simcluster", nodes=32, cores_per_node=32),
        network=dict(
            intra_latency=1e-6,
            inter_latency=2e-6,
            intra_bandwidth=_gbit(10),
            inter_bandwidth=_gbit(10),
        ),
        noise_profile="none",
        description="Paper Sec. III-A simulation platform (32x32, 10 Gbps, 1/2 us)",
        interconnect="simulated switch (10 Gbit/s)",
        mpi_version="SimGrid 3.35 analogue",
    ),
    "hydra": MachineSpec(
        platform=Platform("hydra", nodes=32, cores_per_node=32),
        network=dict(
            intra_latency=0.6e-6,
            inter_latency=1.4e-6,
            intra_bandwidth=_gbit(80),
            inter_bandwidth=_gbit(100),
        ),
        noise_profile="moderate",
        description="Hydra analogue: dual-socket Xeon, Intel Omni-Path 100 Gbit/s",
        interconnect="Intel Omni-Path (100 Gbit/s)",
        mpi_version="Open MPI 4.1.5",
    ),
    "galileo100": MachineSpec(
        platform=Platform("galileo100", nodes=32, cores_per_node=32),
        network=dict(
            intra_latency=0.7e-6,
            inter_latency=1.8e-6,
            intra_bandwidth=_gbit(70),
            inter_bandwidth=_gbit(100),
        ),
        noise_profile="noisy",
        description="Galileo100 analogue: CascadeLake, InfiniBand HDR100, shared production system",
        interconnect="Mellanox InfiniBand HDR100",
        mpi_version="Open MPI 4.1.1",
    ),
    "discoverer": MachineSpec(
        platform=Platform("discoverer", nodes=32, cores_per_node=32, nodes_per_group=8),
        network=dict(
            intra_latency=0.5e-6,
            inter_latency=1.1e-6,
            intra_bandwidth=_gbit(120),
            inter_bandwidth=_gbit(200),
            # Dragonfly+ global (inter-group) links: one extra optical hop.
            group_latency=1.7e-6,
            group_bandwidth=_gbit(200),
        ),
        noise_profile="moderate",
        description="Discoverer analogue: AMD Epyc, InfiniBand HDR Dragonfly+",
        interconnect="InfiniBand HDR (Dragonfly+)",
        mpi_version="Open MPI 4.1.4",
    ),
}


def get_machine(name: str) -> MachineSpec:
    """Look up a machine preset by (case-insensitive) name."""
    try:
        return MACHINES[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown machine {name!r}; available: {sorted(MACHINES)}"
        ) from None
