"""LogGP-flavoured network cost model for the simulator.

The model distinguishes two link levels, mirroring the paper's simulation
platform (Section III-A): *intra-node* (ranks on the same node communicate
through shared memory) and *inter-node* (through the switch).  Each level has
its own latency and bandwidth.  On top of the per-link cost the model charges
a constant CPU overhead per posted send/receive and serializes messages
through per-rank injection (and optionally extraction) ports.

The mapping from rank to node comes from the :class:`~repro.sim.platform.Platform`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.sim.platform import Platform


@dataclass(frozen=True)
class NetworkParams:
    """Tunable parameters of the network model.

    Defaults approximate the paper's simulation platform: 10 Gbps links,
    1 µs intra-node and 2 µs inter-node latency.
    """

    intra_latency: float = 1e-6
    inter_latency: float = 2e-6
    intra_bandwidth: float = 10e9 / 8  # bytes/s (10 Gbps)
    inter_bandwidth: float = 10e9 / 8
    #: Inter-group link (Dragonfly+/fat-tree third level).  ``None`` means
    #: inter-group traffic uses the plain inter-node parameters.
    group_latency: float | None = None
    group_bandwidth: float | None = None
    send_overhead: float = 0.3e-6
    recv_overhead: float = 0.3e-6
    eager_threshold: int = 4096
    rx_serialization: bool = True
    #: Inter-node messages serialize through one NIC per *node* (shared by
    #: all its ranks) rather than a private per-rank port.  This is the
    #: physical reality on multi-core nodes and the first-order source of
    #: contention effects under process-arrival skew; switching it off
    #: falls back to the pure per-rank LogGP port model (ablation).
    shared_node_nic: bool = True

    def validate(self) -> None:
        if self.intra_latency < 0 or self.inter_latency < 0:
            raise ConfigurationError("latencies must be non-negative")
        if self.intra_bandwidth <= 0 or self.inter_bandwidth <= 0:
            raise ConfigurationError("bandwidths must be positive")
        if self.send_overhead < 0 or self.recv_overhead < 0:
            raise ConfigurationError("overheads must be non-negative")
        if self.eager_threshold < 0:
            raise ConfigurationError("eager threshold must be non-negative")
        if self.group_latency is not None and self.group_latency < 0:
            raise ConfigurationError("group latency must be non-negative")
        if self.group_bandwidth is not None and self.group_bandwidth <= 0:
            raise ConfigurationError("group bandwidth must be positive")


@dataclass
class NetworkModel:
    """Prices messages between ranks of a :class:`Platform`.

    The hot methods (:meth:`latency`, :meth:`transmission_time`) are called
    once or twice per simulated message, so node lookups are precomputed
    into a flat list.  The precomputed fields (``node_of``, ``group_of``,
    ``intra_lat``/``inter_lat``/``group_lat``, the ``*_inv_bw`` inverse
    bandwidths, ``eager_max``) are deliberately public: the engine's inlined
    send path reads them directly instead of paying two method calls per
    message.
    """

    platform: Platform
    params: NetworkParams = field(default_factory=NetworkParams)

    def __post_init__(self) -> None:
        self.params.validate()
        self._node_of = self.platform.node_of_rank_table()
        self.node_of = self._node_of
        self.num_nodes = self.platform.nodes
        self.send_overhead = self.params.send_overhead
        self.recv_overhead = self.params.recv_overhead
        self.rx_serialization = self.params.rx_serialization
        self.shared_node_nic = self.params.shared_node_nic
        self.intra_lat = self.params.intra_latency
        self.inter_lat = self.params.inter_latency
        self.intra_inv_bw = 1.0 / self.params.intra_bandwidth
        self.inter_inv_bw = 1.0 / self.params.inter_bandwidth
        self.eager_max = self.params.eager_threshold
        self.group_of = self.platform.group_of_rank_table()
        self.group_lat = (
            self.params.group_latency
            if self.params.group_latency is not None
            else self.params.inter_latency
        )
        group_bw = (
            self.params.group_bandwidth
            if self.params.group_bandwidth is not None
            else self.params.inter_bandwidth
        )
        self.group_inv_bw = 1.0 / group_bw

    def same_node(self, a: int, b: int) -> bool:
        return self._node_of[a] == self._node_of[b]

    def is_eager(self, nbytes: int) -> bool:
        return nbytes <= self.eager_max

    def latency(self, src: int, dst: int) -> float:
        """Wire latency between two ranks (zero for a self-message)."""
        if src == dst:
            return 0.0
        if self._node_of[src] == self._node_of[dst]:
            return self.intra_lat
        if self.group_of[src] == self.group_of[dst]:
            return self.inter_lat
        return self.group_lat

    def transmission_time(self, src: int, dst: int, nbytes: int) -> float:
        """Time the message occupies an injection/extraction port."""
        if src == dst:
            return 0.0
        if self._node_of[src] == self._node_of[dst]:
            return nbytes * self.intra_inv_bw
        if self.group_of[src] == self.group_of[dst]:
            return nbytes * self.inter_inv_bw
        return nbytes * self.group_inv_bw

    def point_to_point_time(self, src: int, dst: int, nbytes: int) -> float:
        """Analytic cost of one isolated message (no port contention).

        Useful for sanity checks and for closed-form expectations in tests.
        """
        if src == dst:
            return 0.0
        base = self.latency(src, dst) + self.transmission_time(src, dst, nbytes)
        if self.rx_serialization:
            base += self.transmission_time(src, dst, nbytes)
        if not self.is_eager(nbytes):
            # RTS out + CTS back before the data can move.
            base += 2 * self.latency(src, dst)
        return base
