"""System-noise models for simulated compute phases.

Real clusters delay processes unevenly: core speed variation, OS jitter,
daemons, and network background traffic all make some ranks systematically
or sporadically slower.  This is precisely what produces the non-trivial
process arrival patterns the paper studies (its Fig. 1).  The model combines
three components applied to each compute phase of ``w`` seconds:

* a **persistent per-rank speed factor** (some ranks always run a bit slow;
  sampled once per rank, log-normally distributed),
* **multiplicative jitter** per phase (log-normal, mean 1),
* **OS noise spikes**: with a small probability per phase, a fixed-length
  detour is added (e.g. a daemon stole the core), following the classic
  fixed-work quantum noise model.

All draws come from per-rank :class:`numpy.random.Generator` streams derived
from one seed, so simulations are reproducible and adding ranks does not
perturb existing streams.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.seeding import spawn_rng


@dataclass(frozen=True)
class NoiseProfile:
    """Parameter set for :class:`NoiseModel`.

    ``speed_sigma`` is the std-dev of the log of the persistent per-rank
    factor; ``jitter_sigma`` the per-phase log-normal sigma;
    ``spike_probability``/``spike_duration`` describe OS-noise detours.
    """

    name: str
    speed_sigma: float = 0.0
    jitter_sigma: float = 0.0
    spike_probability: float = 0.0
    spike_duration: float = 0.0

    def validate(self) -> None:
        if self.speed_sigma < 0 or self.jitter_sigma < 0:
            raise ConfigurationError("noise sigmas must be non-negative")
        if not (0.0 <= self.spike_probability <= 1.0):
            raise ConfigurationError("spike probability must be in [0, 1]")
        if self.spike_duration < 0:
            raise ConfigurationError("spike duration must be non-negative")


#: Named profiles used by the machine presets.
NOISE_PROFILES: dict[str, NoiseProfile] = {
    "none": NoiseProfile("none"),
    "quiet": NoiseProfile(
        "quiet", speed_sigma=0.01, jitter_sigma=0.01, spike_probability=0.001, spike_duration=20e-6
    ),
    "moderate": NoiseProfile(
        "moderate",
        speed_sigma=0.03,
        jitter_sigma=0.03,
        spike_probability=0.01,
        spike_duration=100e-6,
    ),
    "noisy": NoiseProfile(
        "noisy",
        speed_sigma=0.08,
        jitter_sigma=0.06,
        spike_probability=0.03,
        spike_duration=250e-6,
    ),
}


def get_noise_profile(name: str) -> NoiseProfile:
    try:
        return NOISE_PROFILES[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown noise profile {name!r}; available: {sorted(NOISE_PROFILES)}"
        ) from None


class NoiseModel:
    """Stateful noise generator attached to a simulation job."""

    def __init__(self, profile: NoiseProfile | str, num_ranks: int, seed: int = 0) -> None:
        if isinstance(profile, str):
            profile = get_noise_profile(profile)
        profile.validate()
        if num_ranks <= 0:
            raise ConfigurationError("num_ranks must be positive")
        self.profile = profile
        self.num_ranks = num_ranks
        self.seed = seed
        self._rngs = [spawn_rng(seed, "noise", rank) for rank in range(num_ranks)]
        if profile.speed_sigma > 0:
            factor_rng = spawn_rng(seed, "noise-speed")
            self._speed = np.exp(
                factor_rng.normal(0.0, profile.speed_sigma, size=num_ranks)
            )
        else:
            self._speed = np.ones(num_ranks)

    def speed_factor(self, rank: int) -> float:
        """Persistent slowdown factor of a rank (1.0 = nominal speed)."""
        return float(self._speed[rank])

    def perturb(self, rank: int, now: float, seconds: float) -> float:
        """Return the actual duration of a nominal ``seconds`` compute phase."""
        if seconds < 0:
            raise ConfigurationError(f"negative compute time {seconds}")
        profile = self.profile
        duration = seconds * self._speed[rank]
        rng = self._rngs[rank]
        if profile.jitter_sigma > 0:
            duration *= float(np.exp(rng.normal(0.0, profile.jitter_sigma)))
        if profile.spike_probability > 0 and rng.random() < profile.spike_probability:
            duration += profile.spike_duration
        return duration


__all__ = ["NoiseProfile", "NoiseModel", "NOISE_PROFILES", "get_noise_profile"]
