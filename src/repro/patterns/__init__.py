"""Process arrival patterns (paper Section III-B, Fig. 3).

An *arrival pattern* assigns every rank a skew — the extra delay it waits
before entering a collective.  The paper defines eight artificial shapes
capturing the trends observed in application traces, plus the ``no_delay``
reference where every rank enters simultaneously.
"""

from repro.patterns.shapes import NO_DELAY, PATTERN_SHAPES, list_shapes, shape_fn
from repro.patterns.generator import (
    ArrivalPattern,
    generate_pattern,
    no_delay_pattern,
    read_pattern_file,
    write_pattern_file,
)
from repro.patterns.skew import (
    skew_from_mean_runtime,
    per_algorithm_skews,
    SKEW_FACTORS,
)
from repro.patterns.node_level import generate_node_pattern

__all__ = [
    "NO_DELAY",
    "PATTERN_SHAPES",
    "no_delay_pattern",
    "list_shapes",
    "shape_fn",
    "ArrivalPattern",
    "generate_pattern",
    "read_pattern_file",
    "write_pattern_file",
    "skew_from_mean_runtime",
    "per_algorithm_skews",
    "SKEW_FACTORS",
    "generate_node_pattern",
]
