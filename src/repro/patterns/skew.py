"""Skew-magnitude policies (paper Sections III-B and IV-C).

Two ways the paper sizes the maximum process skew:

* **Shared magnitude** (Figs. 4, 5): run every algorithm in the No-delay
  case, average the runtimes, multiply by a factor (0.5 / 1.0 / 1.5); every
  algorithm is then exposed to the *same* skew.
* **Per-algorithm magnitude** (Fig. 6 robustness): each algorithm ``i`` gets
  a pattern scaled to its *own* No-delay runtime ``t_i`` — "an algorithm
  that requires X ms should be given a process arrival pattern with a
  maximum skew of X ms".
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.errors import ConfigurationError

#: The three factors the paper applies to the mean No-delay runtime; the
#: headline results (Fig. 4) use 1.5.
SKEW_FACTORS = (0.5, 1.0, 1.5)

#: The factor shared-skew sweeps and tuning campaigns use when none is
#: given — the paper's headline 1.5 (the strongest of :data:`SKEW_FACTORS`).
#: Every default entry point must agree on this value; a campaign tuning
#: under a different skew than the figures it claims to reproduce would
#: silently select under non-headline conditions.
DEFAULT_SKEW_FACTOR = SKEW_FACTORS[-1]


def skew_from_mean_runtime(runtimes: Sequence[float] | Mapping[str, float],
                           factor: float = 1.5) -> float:
    """Shared maximum skew: ``factor`` x mean No-delay runtime over algorithms."""
    if factor < 0:
        raise ConfigurationError(f"factor must be non-negative, got {factor}")
    values = list(runtimes.values()) if isinstance(runtimes, Mapping) else list(runtimes)
    if not values:
        raise ConfigurationError("need at least one runtime")
    arr = np.asarray(values, dtype=float)
    if (arr < 0).any():
        raise ConfigurationError("runtimes must be non-negative")
    return float(factor * arr.mean())


def per_algorithm_skews(runtimes: Mapping[str, float], factor: float = 1.0) -> dict[str, float]:
    """Per-algorithm maximum skew for the robustness experiments (Fig. 6)."""
    if factor < 0:
        raise ConfigurationError(f"factor must be non-negative, got {factor}")
    out = {}
    for name, t in runtimes.items():
        if t < 0:
            raise ConfigurationError(f"negative runtime for {name!r}")
        out[name] = float(factor * t)
    return out
