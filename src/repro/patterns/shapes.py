"""The eight artificial arrival-pattern shapes of the paper's Fig. 3.

Every shape function maps ``(p, rng)`` to an array of *relative* skews in
``[0, 1]`` whose maximum is exactly 1 (so scaling by the configured maximum
process skew ``s`` yields per-rank delays in ``[0, s]`` with at least one
rank experiencing ``s``).  The ``no_delay`` reference (all zeros) is kept
separate because nothing about it scales.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import ConfigurationError

ShapeFn = Callable[[int, np.random.Generator], np.ndarray]


def _normalize(rel: np.ndarray) -> np.ndarray:
    """Scale a non-negative profile so its maximum is exactly 1."""
    peak = rel.max()
    if peak <= 0:
        return np.zeros_like(rel)
    return rel / peak


def ascending(p: int, rng: np.random.Generator) -> np.ndarray:
    """Skew grows linearly with rank; the last rank is the most delayed."""
    if p == 1:
        return np.ones(1)
    return np.arange(p) / (p - 1)


def descending(p: int, rng: np.random.Generator) -> np.ndarray:
    """Skew falls linearly with rank; rank 0 is the most delayed."""
    return ascending(p, rng)[::-1].copy()


def first_delayed(p: int, rng: np.random.Generator) -> np.ndarray:
    """Only rank 0 is delayed (a straggler root)."""
    rel = np.zeros(p)
    rel[0] = 1.0
    return rel


def last_delayed(p: int, rng: np.random.Generator) -> np.ndarray:
    """Only the last rank is delayed."""
    rel = np.zeros(p)
    rel[-1] = 1.0
    return rel


def random_uniform(p: int, rng: np.random.Generator) -> np.ndarray:
    """I.i.d. uniform skews, rescaled so the maximum is 1."""
    return _normalize(rng.random(p))


def bell(p: int, rng: np.random.Generator) -> np.ndarray:
    """Gaussian bump: the middle ranks are the most delayed."""
    centre = (p - 1) / 2.0
    width = max(p / 6.0, 1.0)
    return _normalize(np.exp(-((np.arange(p) - centre) ** 2) / (2 * width**2)))


def step(p: int, rng: np.random.Generator) -> np.ndarray:
    """Half the ranks on time, the other half uniformly late (two node groups)."""
    rel = np.zeros(p)
    rel[p // 2 :] = 1.0
    return rel


def zigzag(p: int, rng: np.random.Generator) -> np.ndarray:
    """Alternating on-time / delayed ranks (e.g. one slow rank per core pair)."""
    rel = np.zeros(p)
    rel[1::2] = 1.0
    if p == 1:
        rel[0] = 1.0
    return rel


#: The eight artificial shapes of Fig. 3, plus the no-delay reference.
PATTERN_SHAPES: dict[str, ShapeFn] = {
    "ascending": ascending,
    "descending": descending,
    "first_delayed": first_delayed,
    "last_delayed": last_delayed,
    "random": random_uniform,
    "bell": bell,
    "step": step,
    "zigzag": zigzag,
}

#: Shape name used for the perfectly synchronized reference case.
NO_DELAY = "no_delay"


def list_shapes(include_no_delay: bool = False) -> list[str]:
    """All artificial shape names (optionally with the no-delay reference)."""
    names = list(PATTERN_SHAPES)
    if include_no_delay:
        names.insert(0, NO_DELAY)
    return names


def shape_fn(name: str) -> ShapeFn:
    if name == NO_DELAY:
        return lambda p, rng: np.zeros(p)
    try:
        return PATTERN_SHAPES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown arrival-pattern shape {name!r}; "
            f"available: {[NO_DELAY] + list(PATTERN_SHAPES)}"
        ) from None
