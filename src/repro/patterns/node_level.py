"""Node-correlated arrival patterns (inter-node vs intra-node imbalance).

Real-machine delays are often *node-correlated*: OS noise, a slow node, or
a congested NIC delays all ranks of a node together.  Parsons & Pai (ICS'15,
cited by the paper) show the inter- vs intra-node structure of the
imbalance matters for collective performance.  This module applies the
Fig. 3 shapes at node granularity: the shape assigns one skew per *node*,
and every rank of the node inherits it (optionally with a small intra-node
jitter on top).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.patterns.generator import ArrivalPattern
from repro.patterns.shapes import shape_fn
from repro.sim.platform import Platform
from repro.utils.seeding import spawn_rng


def generate_node_pattern(
    shape: str,
    platform: Platform,
    max_skew: float,
    seed: int = 0,
    intra_jitter: float = 0.0,
) -> ArrivalPattern:
    """Generate a node-correlated pattern over ``platform``'s ranks.

    The shape runs over the *nodes*; each rank inherits its node's skew.
    ``intra_jitter`` adds uniform per-rank noise in ``[0, intra_jitter]``
    on top (modelling residual core-level imbalance).  The peak total skew
    is normalized back to ``max_skew``.
    """
    if max_skew < 0:
        raise ConfigurationError("max_skew must be non-negative")
    if intra_jitter < 0:
        raise ConfigurationError("intra_jitter must be non-negative")
    fn = shape_fn(shape)
    rng = spawn_rng(seed, "node-pattern", shape, platform.nodes)
    node_rel = fn(platform.nodes, rng)
    skews = np.empty(platform.num_ranks)
    node_of = platform.node_of_rank_table()
    for rank in range(platform.num_ranks):
        skews[rank] = node_rel[node_of[rank]]
    skews = skews * max_skew
    if intra_jitter > 0:
        skews = skews + rng.uniform(0, intra_jitter, size=platform.num_ranks)
    peak = skews.max()
    if peak > 0:
        skews = skews * (max_skew / peak)
    return ArrivalPattern(f"node_{shape}", skews)


__all__ = ["generate_node_pattern"]
