"""Concrete arrival-pattern generation and the paper's pattern-file format.

The paper's generator "takes the shape type, the number of processes, and
the maximum process skew as inputs and produces a file with p lines, where
each line i denotes the process skew of process P_i".
:func:`write_pattern_file` / :func:`read_pattern_file` implement exactly
that format (one float, in seconds, per line; ``#`` comments allowed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import ConfigurationError, TraceFormatError
from repro.patterns.shapes import NO_DELAY, shape_fn
from repro.utils.seeding import spawn_rng


@dataclass(frozen=True)
class ArrivalPattern:
    """A concrete per-rank skew assignment.

    ``skews[i]`` is the delay (seconds) rank ``i`` waits before entering the
    collective; ``name`` records the generating shape for reports.
    """

    name: str
    skews: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        arr = np.asarray(self.skews, dtype=float)
        if arr.ndim != 1 or arr.size == 0:
            raise ConfigurationError("skews must be a non-empty 1-D array")
        if (arr < 0).any():
            raise ConfigurationError("skews must be non-negative")
        object.__setattr__(self, "skews", arr)

    @property
    def num_ranks(self) -> int:
        return int(self.skews.shape[0])

    @property
    def max_skew(self) -> float:
        return float(self.skews.max())

    def skew_of(self, rank: int) -> float:
        """The paper's ``get_arrival_pattern_delay()`` for rank ``rank``."""
        return float(self.skews[rank])

    def scaled_to(self, max_skew: float) -> "ArrivalPattern":
        """The same shape rescaled so its maximum skew is ``max_skew``."""
        if max_skew < 0:
            raise ConfigurationError("max_skew must be non-negative")
        peak = self.skews.max()
        if peak == 0:
            return ArrivalPattern(self.name, np.zeros_like(self.skews))
        return ArrivalPattern(self.name, self.skews * (max_skew / peak))


def generate_pattern(
    shape: str, num_ranks: int, max_skew: float, seed: int = 0
) -> ArrivalPattern:
    """Generate a concrete pattern from a Fig. 3 shape.

    ``max_skew`` is the paper's *maximum process skew* ``s``: per-rank delays
    fall in ``[0, s]`` and (except for ``no_delay``) at least one rank is
    delayed by exactly ``s``.
    """
    if num_ranks <= 0:
        raise ConfigurationError(f"num_ranks must be positive, got {num_ranks}")
    if max_skew < 0:
        raise ConfigurationError(f"max_skew must be non-negative, got {max_skew}")
    fn = shape_fn(shape)
    rng = spawn_rng(seed, "pattern", shape, num_ranks)
    rel = fn(num_ranks, rng)
    return ArrivalPattern(shape, rel * max_skew)


def no_delay_pattern(num_ranks: int) -> ArrivalPattern:
    """The synchronized reference pattern (all skews zero)."""
    return generate_pattern(NO_DELAY, num_ranks, 0.0)


def write_pattern_file(path: str | Path, pattern: ArrivalPattern) -> None:
    """Write the paper's p-line pattern-file format."""
    path = Path(path)
    lines = [f"# arrival pattern: {pattern.name} (p={pattern.num_ranks})"]
    lines += [f"{skew:.12g}" for skew in pattern.skews]
    path.write_text("\n".join(lines) + "\n")


def read_pattern_file(path: str | Path, name: str | None = None) -> ArrivalPattern:
    """Read a p-line pattern file; ``#`` lines are comments."""
    path = Path(path)
    skews: list[float] = []
    header_name = None
    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            if "arrival pattern:" in line and header_name is None:
                header_name = line.split("arrival pattern:", 1)[1].split("(")[0].strip()
            continue
        try:
            value = float(line)
        except ValueError:
            raise TraceFormatError(f"{path}:{lineno}: not a number: {line!r}") from None
        if value < 0:
            raise TraceFormatError(f"{path}:{lineno}: negative skew {value}")
        skews.append(value)
    if not skews:
        raise TraceFormatError(f"{path}: no skew values found")
    return ArrivalPattern(name or header_name or path.stem, np.array(skews))
