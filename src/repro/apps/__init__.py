"""Proxy applications for end-to-end validation (paper Section V).

The paper validates its selection strategy on NAS FT, whose communication
is dominated (>95 % of MPI time) by ``MPI_Alltoall`` at a fixed 32768-byte
message.  :class:`FTProxy` reproduces exactly that structure — iterative
compute phases (FFT/evolve work, perturbed by machine noise) interleaved
with transposition All-to-alls — so that realistic arrival patterns emerge
endogenously from compute imbalance.  :class:`CGProxy` provides an
Allreduce-dominant counterpart.
"""

from repro.apps.base import AppResult, IterativeProxyApp
from repro.apps.ft import FTProxy
from repro.apps.cg import CGProxy
from repro.apps.mixed import MixedAppResult, MixedProxyApp, Phase

__all__ = [
    "AppResult",
    "IterativeProxyApp",
    "FTProxy",
    "CGProxy",
    "Phase",
    "MixedProxyApp",
    "MixedAppResult",
]
