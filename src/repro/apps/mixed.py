"""Mixed-collective proxy application driven by a selection table.

Real applications interleave several collectives per timestep (e.g. a CFD
step: halo-ish Alltoall, a residual Allreduce, an occasional Bcast of
control data).  :class:`MixedProxyApp` models that and — unlike the
fixed-algorithm proxies — resolves each phase's algorithm through a
decision source, in priority order:

1. an explicit per-phase algorithm,
2. a deployed :class:`~repro.selection.table.SelectionTable` (the artifact
   a tuning campaign produces),
3. the Open-MPI-style fixed decision logic.

This closes the loop: trace -> tune -> deploy table -> run application.

The compute/phase loop itself lives in :mod:`repro.workloads.spec` — this
app routes through :func:`~repro.workloads.spec.iteration_body`, so it
supports every workload overlap mode (``sequential``/``split``/
``interleaved``) and vector-collective phases.  :class:`Phase` is a
deprecation shim kept for callers of the original API; new code should use
:class:`~repro.workloads.spec.CollectivePhase` (same fields) or a full
:class:`~repro.workloads.spec.WorkloadSpec` directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.selection.table import SelectionTable
from repro.sim.mpi import run_processes
from repro.sim.network import NetworkParams
from repro.sim.noise import NoiseModel
from repro.sim.platform import MachineSpec, Platform
from repro.workloads.runner import resolve_algorithm as _resolve
from repro.workloads.spec import (
    OVERLAP_MODES,
    CollectivePhase,
    WorkloadSpec,
    build_plan,
    iteration_body,
)

#: Deprecation shim: ``Phase`` predates the workloads subsystem and is now
#: the same value object (field-compatible: ``Phase(collective, msg_bytes,
#: count=..., algorithm=...)``).
Phase = CollectivePhase


@dataclass
class MixedAppResult:
    runtime: float
    resolved: dict[str, str] = field(default_factory=dict)  # phase key -> algorithm
    phase_mpi_time: dict[str, float] = field(default_factory=dict)

    @property
    def dominant_phase(self) -> str:
        return max(self.phase_mpi_time, key=self.phase_mpi_time.get)


@dataclass
class MixedProxyApp:
    """compute -> phase_1 -> phase_2 -> ... loop with table-driven algorithms."""

    platform: Platform
    phases: tuple[Phase, ...]
    iterations: int = 10
    compute_per_iteration: float = 1e-3
    params: NetworkParams = field(default_factory=NetworkParams)
    noise: NoiseModel | None = None
    table: SelectionTable | None = None
    overlap: str = "sequential"

    def __post_init__(self) -> None:
        if not self.phases:
            raise ConfigurationError("need at least one phase")
        if self.iterations <= 0:
            raise ConfigurationError("iterations must be positive")
        if self.overlap not in OVERLAP_MODES:
            raise ConfigurationError(
                f"unknown overlap mode {self.overlap!r}; "
                f"expected one of {OVERLAP_MODES}"
            )

    @classmethod
    def from_machine(cls, spec: MachineSpec, phases, nodes=None,
                     cores_per_node=None, seed: int = 0, **kwargs):
        platform = spec.platform.scaled(nodes, cores_per_node)
        return cls(
            platform=platform,
            phases=tuple(phases),
            params=NetworkParams(**spec.network),
            noise=NoiseModel(spec.noise_profile, platform.num_ranks, seed=seed),
            **kwargs,
        )

    def resolve_algorithm(self, phase: Phase) -> str:
        """Priority: explicit -> selection table -> fixed decision logic."""
        return _resolve(phase, self.platform.num_ranks, self.table)

    def to_workload(self, name: str = "mixed") -> WorkloadSpec:
        """This app's loop as a declarative workload spec."""
        return WorkloadSpec(
            name=name,
            phases=tuple(self.phases),
            iterations=self.iterations,
            warmup=0,
            compute=self.compute_per_iteration,
            overlap=self.overlap,
            description="mixed-collective proxy application",
        )

    def run(self) -> MixedAppResult:
        p = self.platform.num_ranks
        plan = build_plan(self.phases, p, self.resolve_algorithm)
        resolved = {key: algorithm for key, _c, algorithm, _a, _i in plan}
        compute = self.compute_per_iteration
        iterations = self.iterations
        overlap = self.overlap

        def prog(ctx):
            me = ctx.rank
            my_plan = [(key, coll, algo, args, inputs[me])
                       for key, coll, algo, args, inputs in plan]
            phase_time = {key: 0.0 for key, *_ in plan}
            yield from ctx.barrier()
            start = ctx.time()
            for _it in range(iterations):
                yield from iteration_body(ctx, my_plan, compute, overlap,
                                          phase_time)
            return ctx.time() - start, phase_time

        run = run_processes(self.platform, prog, params=self.params,
                            noise=self.noise)
        runtimes = [r[0] for r in run.rank_results]
        phase_mpi = {key: float(np.mean([r[1][key] for r in run.rank_results]))
                     for key, *_ in plan}
        return MixedAppResult(
            runtime=float(max(runtimes)),
            resolved=resolved,
            phase_mpi_time=phase_mpi,
        )


__all__ = ["Phase", "MixedProxyApp", "MixedAppResult"]
