"""Mixed-collective proxy application driven by a selection table.

Real applications interleave several collectives per timestep (e.g. a CFD
step: halo-ish Alltoall, a residual Allreduce, an occasional Bcast of
control data).  :class:`MixedProxyApp` models that and — unlike the
fixed-algorithm proxies — resolves each phase's algorithm through a
decision source, in priority order:

1. an explicit per-phase algorithm,
2. a deployed :class:`~repro.selection.table.SelectionTable` (the artifact
   a tuning campaign produces),
3. the Open-MPI-style fixed decision logic.

This closes the loop: trace -> tune -> deploy table -> run application.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.collectives import CollArgs, make_input, run_collective
from repro.collectives.tuned import fixed_decision
from repro.selection.table import SelectionTable
from repro.sim.mpi import run_processes
from repro.sim.network import NetworkParams
from repro.sim.noise import NoiseModel
from repro.sim.platform import MachineSpec, Platform


@dataclass(frozen=True)
class Phase:
    """One collective phase of a timestep."""

    collective: str
    msg_bytes: float
    count: int = 32
    algorithm: str | None = None  # None -> resolve via table / fixed rules

    def __post_init__(self) -> None:
        if self.msg_bytes < 0 or self.count <= 0:
            raise ConfigurationError("invalid phase parameters")


@dataclass
class MixedAppResult:
    runtime: float
    resolved: dict[str, str] = field(default_factory=dict)  # phase key -> algorithm
    phase_mpi_time: dict[str, float] = field(default_factory=dict)

    @property
    def dominant_phase(self) -> str:
        return max(self.phase_mpi_time, key=self.phase_mpi_time.get)


@dataclass
class MixedProxyApp:
    """compute -> phase_1 -> phase_2 -> ... loop with table-driven algorithms."""

    platform: Platform
    phases: tuple[Phase, ...]
    iterations: int = 10
    compute_per_iteration: float = 1e-3
    params: NetworkParams = field(default_factory=NetworkParams)
    noise: NoiseModel | None = None
    table: SelectionTable | None = None

    def __post_init__(self) -> None:
        if not self.phases:
            raise ConfigurationError("need at least one phase")
        if self.iterations <= 0:
            raise ConfigurationError("iterations must be positive")

    @classmethod
    def from_machine(cls, spec: MachineSpec, phases, nodes=None,
                     cores_per_node=None, seed: int = 0, **kwargs):
        platform = spec.platform.scaled(nodes, cores_per_node)
        return cls(
            platform=platform,
            phases=tuple(phases),
            params=NetworkParams(**spec.network),
            noise=NoiseModel(spec.noise_profile, platform.num_ranks, seed=seed),
            **kwargs,
        )

    def resolve_algorithm(self, phase: Phase) -> str:
        """Priority: explicit -> selection table -> fixed decision logic."""
        if phase.algorithm is not None:
            return phase.algorithm
        p = self.platform.num_ranks
        if self.table is not None:
            try:
                return self.table.lookup(phase.collective, p, phase.msg_bytes)
            except ConfigurationError:
                pass  # no rules for this collective/comm size: fall through
        return fixed_decision(phase.collective, p, phase.msg_bytes)

    def run(self) -> MixedAppResult:
        p = self.platform.num_ranks
        plan = []
        resolved: dict[str, str] = {}
        for idx, phase in enumerate(self.phases):
            algorithm = self.resolve_algorithm(phase)
            key = f"{phase.collective}@{int(phase.msg_bytes)}B"
            resolved[key] = algorithm
            args = CollArgs(count=phase.count, msg_bytes=phase.msg_bytes,
                            tag=10_000 + 97 * idx)
            inputs = [make_input(phase.collective, r, p, phase.count)
                      for r in range(p)]
            plan.append((key, phase.collective, algorithm, args, inputs))
        compute = self.compute_per_iteration
        iterations = self.iterations

        def prog(ctx):
            me = ctx.rank
            phase_time = {key: 0.0 for key, *_ in plan}
            yield from ctx.barrier()
            start = ctx.time()
            for _it in range(iterations):
                yield ctx.compute(compute)
                for key, collective, algorithm, args, inputs in plan:
                    before = ctx.time()
                    yield from run_collective(ctx, collective, algorithm,
                                              args, inputs[me])
                    phase_time[key] += ctx.time() - before
            return ctx.time() - start, phase_time

        run = run_processes(self.platform, prog, params=self.params,
                            noise=self.noise)
        runtimes = [r[0] for r in run.rank_results]
        phase_mpi = {key: float(np.mean([r[1][key] for r in run.rank_results]))
                     for key, *_ in plan}
        return MixedAppResult(
            runtime=float(max(runtimes)),
            resolved=resolved,
            phase_mpi_time=phase_mpi,
        )


__all__ = ["Phase", "MixedProxyApp", "MixedAppResult"]
