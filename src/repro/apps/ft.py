"""FT proxy: the NAS FT (3-D FFT) communication skeleton.

NAS FT iterates ``evolve -> FFT`` steps; with a 2-D (transpose-based)
decomposition each 3-D FFT performs an all-to-all transposition.  In the
paper's configuration (class D on 32 x 32 ranks) MPI_Alltoall accounts for
over 95 % of MPI time at a fixed message size of 32 768 bytes, and 50-70 %
of the total runtime.  The proxy keeps precisely those ratios adjustable:
per iteration it runs FFT/evolve compute (noise-perturbed, so realistic
arrival skew emerges) and ``transposes_per_iteration`` Alltoall calls.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import IterativeProxyApp
from repro.sim.mpi import ProcContext  # noqa: F401  (re-export convenience)
from repro.sim.network import NetworkParams
from repro.sim.noise import NoiseModel
from repro.sim.platform import MachineSpec, Platform

#: The message size the paper traces for FT class D on 1024 ranks.
FT_MSG_BYTES = 32_768.0

#: NAS FT problem classes: (nx, ny, nz) grid dimensions.
FT_CLASSES: dict[str, tuple[int, int, int]] = {
    "S": (64, 64, 64),
    "W": (128, 128, 32),
    "A": (256, 256, 128),
    "B": (512, 256, 256),
    "C": (512, 512, 512),
    "D": (2048, 1024, 1024),
    "E": (4096, 2048, 2048),
}


def ft_message_bytes(problem_class: str, num_ranks: int) -> float:
    """Per-pair Alltoall block size of NAS FT's transpose.

    The transpose redistributes the full complex grid (16 bytes/point)
    across all rank pairs: ``nx*ny*nz * 16 / p^2`` bytes per block.
    Sanity anchor: class D on 1024 ranks gives exactly the paper's
    32 768 B.
    """
    try:
        nx, ny, nz = FT_CLASSES[problem_class.upper()]
    except KeyError:
        raise ValueError(
            f"unknown FT class {problem_class!r}; choose from {sorted(FT_CLASSES)}"
        ) from None
    if num_ranks <= 0:
        raise ValueError("num_ranks must be positive")
    return nx * ny * nz * 16 / (num_ranks**2)


@dataclass
class FTProxy(IterativeProxyApp):
    """NAS-FT-shaped proxy: Alltoall-dominant iterative application."""

    collective: str = "alltoall"
    algorithm: str = "pairwise"
    msg_bytes: float = FT_MSG_BYTES
    iterations: int = 20
    calls_per_iteration: int = 2  # forward + inverse transpose per evolve step
    compute_per_iteration: float = 1.2e-3
    name: str = "ft"

    # IterativeProxyApp's __init__/run are inherited unchanged; this class
    # fixes FT's communication structure and message size.

    @classmethod
    def for_class(
        cls,
        problem_class: str,
        spec: MachineSpec,
        nodes: int | None = None,
        cores_per_node: int | None = None,
        seed: int = 0,
        algorithm: str = "pairwise",
        iterations: int = 20,
        seconds_per_point: float = 2e-11,
    ) -> "FTProxy":
        """FT sized from an actual NAS class: message bytes from the grid,
        compute time from a per-grid-point rate (default ~50 Gpoint/s/rank
        equivalent, covering the FFT's log-factor work).

        Unlike :meth:`class_d_scaled` (which pins the paper's 32 768 B
        per-pair message at any rank count), this derives both message size
        and compute from the class, so communication/compute ratios follow
        the real benchmark as the class or rank count changes.
        """
        platform = spec.platform.scaled(nodes, cores_per_node)
        p = platform.num_ranks
        nx, ny, nz = FT_CLASSES[problem_class.upper()]
        points_per_rank = nx * ny * nz / p
        noise = NoiseModel(spec.noise_profile, p, seed=seed)
        return cls(
            platform=platform,
            params=NetworkParams(**spec.network),
            noise=noise,
            algorithm=algorithm,
            iterations=iterations,
            msg_bytes=ft_message_bytes(problem_class, p),
            compute_per_iteration=points_per_rank * seconds_per_point,
        )

    @classmethod
    def class_d_scaled(
        cls,
        spec: MachineSpec,
        nodes: int | None = None,
        cores_per_node: int | None = None,
        seed: int = 0,
        algorithm: str = "pairwise",
        iterations: int = 20,
    ) -> "FTProxy":
        """FT with the paper's class-D per-pair message size on a scaled machine."""
        platform = spec.platform.scaled(nodes, cores_per_node)
        noise = NoiseModel(spec.noise_profile, platform.num_ranks, seed=seed)
        return cls(
            platform=platform,
            params=NetworkParams(**spec.network),
            noise=noise,
            algorithm=algorithm,
            iterations=iterations,
        )
