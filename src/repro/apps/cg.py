"""CG proxy: an Allreduce-dominant iterative application.

The conjugate-gradient solver of the NAS suite performs two small
Allreduce reductions (dot products) per iteration between sparse
matrix-vector compute phases.  This proxy is the Allreduce-dominant
counterpart to :class:`~repro.apps.ft.FTProxy`, useful for demonstrating
the paper's finding that Allreduce is far less arrival-pattern-sensitive.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import IterativeProxyApp


@dataclass
class CGProxy(IterativeProxyApp):
    """NAS-CG-shaped proxy: small-message Allreduce every half-iteration."""

    collective: str = "allreduce"
    algorithm: str = "recursive_doubling"
    msg_bytes: float = 8.0
    iterations: int = 75
    calls_per_iteration: int = 2  # the two dot products of a CG step
    compute_per_iteration: float = 1e-3
    name: str = "cg"
