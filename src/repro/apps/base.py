"""Generic iterative proxy application over the simulated MPI layer.

An :class:`IterativeProxyApp` alternates noise-perturbed compute phases with
collective calls — the skeleton of bulk-synchronous applications like the
NAS benchmarks.  Per-rank compute and MPI time are accounted separately,
standing in for the paper's mpisee profiling, and an optional
:class:`~repro.tracing.tracer.CollectiveTracer` records arrival patterns.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.collectives import CollArgs, make_input, run_collective
from repro.sim.mpi import run_processes
from repro.sim.network import NetworkParams
from repro.sim.noise import NoiseModel
from repro.sim.platform import MachineSpec, Platform
from repro.tracing.tracer import CollectiveTracer


@dataclass
class AppResult:
    """Accounting from one application run (the mpisee-analogue profile)."""

    runtime: float
    rank_compute_time: np.ndarray = field(repr=False)
    rank_mpi_time: np.ndarray = field(repr=False)
    collective_calls: int = 0

    @property
    def compute_time(self) -> float:
        """Critical-path compute estimate: the slowest rank's compute total."""
        return float(self.rank_compute_time.max())

    @property
    def mpi_time(self) -> float:
        """Mean time spent inside collectives across ranks."""
        return float(self.rank_mpi_time.mean())

    @property
    def mpi_fraction(self) -> float:
        return self.mpi_time / self.runtime if self.runtime > 0 else 0.0


@dataclass
class IterativeProxyApp:
    """compute -> collective [-> collective ...] loop, repeated ``iterations`` times.

    Parameters
    ----------
    collective, algorithm, msg_bytes:
        The dominant collective and the algorithm under study.
    compute_per_iteration:
        Nominal seconds of compute per iteration (split evenly across the
        ``calls_per_iteration`` collective calls).
    calls_per_iteration:
        Collective calls per iteration (FT performs multiple transposes).
    noise:
        The machine noise model; its per-rank persistent speed factors are
        what create the application's characteristic arrival pattern.
    """

    platform: Platform
    collective: str
    algorithm: str
    msg_bytes: float
    iterations: int = 20
    calls_per_iteration: int = 2
    compute_per_iteration: float = 2e-3
    count: int = 64
    params: NetworkParams = field(default_factory=NetworkParams)
    noise: NoiseModel | None = None
    name: str = "proxy"

    def __post_init__(self) -> None:
        if self.iterations <= 0 or self.calls_per_iteration <= 0:
            raise ConfigurationError("iterations and calls_per_iteration must be positive")
        if self.compute_per_iteration < 0:
            raise ConfigurationError("compute_per_iteration must be non-negative")

    @classmethod
    def from_machine(cls, spec: MachineSpec, nodes: int | None = None,
                     cores_per_node: int | None = None, seed: int = 0, **kwargs):
        platform = spec.platform.scaled(nodes, cores_per_node)
        noise = NoiseModel(spec.noise_profile, platform.num_ranks, seed=seed)
        return cls(platform=platform, params=NetworkParams(**spec.network),
                   noise=noise, **kwargs)

    def run(self, tracer: CollectiveTracer | None = None) -> AppResult:
        """Execute the proxy app; returns profile accounting."""
        p = self.platform.num_ranks
        args = CollArgs(count=self.count, msg_bytes=self.msg_bytes)
        inputs = [make_input(self.collective, r, p, self.count) for r in range(p)]
        compute_chunk = self.compute_per_iteration / self.calls_per_iteration
        iterations = self.iterations
        calls = self.calls_per_iteration
        collective, algorithm = self.collective, self.algorithm

        def prog(ctx):
            me = ctx.rank
            compute_total = 0.0
            mpi_total = 0.0
            yield from ctx.barrier()
            start = ctx.time()
            for _it in range(iterations):
                for _call in range(calls):
                    before = ctx.time()
                    yield ctx.compute(compute_chunk)
                    entered = ctx.time()
                    compute_total += entered - before
                    if tracer is not None:
                        yield from tracer.traced(ctx, collective, algorithm, args, inputs[me])
                    else:
                        yield from run_collective(ctx, collective, algorithm, args, inputs[me])
                    mpi_total += ctx.time() - entered
            return ctx.time() - start, compute_total, mpi_total

        run = run_processes(self.platform, prog, params=self.params, noise=self.noise)
        runtimes = np.array([r[0] for r in run.rank_results])
        return AppResult(
            runtime=float(runtimes.max()),
            rank_compute_time=np.array([r[1] for r in run.rank_results]),
            rank_mpi_time=np.array([r[2] for r in run.rank_results]),
            collective_calls=iterations * calls,
        )
