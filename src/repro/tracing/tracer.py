"""The tracing library: interpose on collective calls and record timestamps.

Mirrors the paper's PMPI-based tracer: it records *only* collectives, it
synchronizes clocks before tracing starts (in the simulator the perfect
global clock plays that role; a :class:`~repro.clocks.sync.SyncedClocks`
stack can be layered for realism), and it supports sampling — trace every
``k``-th call and/or a subset of ranks — to keep traces small.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import ConfigurationError
from repro.collectives import CollArgs, run_collective
from repro.obs.context import current as _obs_current
from repro.sim.mpi import ProcContext


@dataclass(frozen=True)
class TraceEvent:
    """One rank's view of one traced collective call."""

    collective: str
    sequence: int
    rank: int
    arrival: float
    exit: float

    def __post_init__(self) -> None:
        if self.exit < self.arrival:
            raise ConfigurationError("exit before arrival in trace event")


class CollectiveTracer:
    """Collects :class:`TraceEvent` records during a simulation run.

    One tracer instance is shared by all ranks of a job (the simulator's
    single address space stands in for the per-rank trace files that a real
    PMPI tracer would write and merge).

    Parameters
    ----------
    call_sampling:
        Record every ``call_sampling``-th call per collective (1 = all).
    ranks:
        Restrict tracing to these ranks (``None`` = all ranks).
    """

    def __init__(self, call_sampling: int = 1, ranks: Iterable[int] | None = None) -> None:
        if call_sampling < 1:
            raise ConfigurationError("call_sampling must be >= 1")
        self.call_sampling = call_sampling
        self.ranks = None if ranks is None else frozenset(ranks)
        self.events: list[TraceEvent] = []
        self._sequence: dict[tuple[str, int], int] = {}

    def _next_sequence(self, collective: str, rank: int) -> int:
        key = (collective, rank)
        seq = self._sequence.get(key, 0)
        self._sequence[key] = seq + 1
        return seq

    def should_record(self, rank: int, sequence: int) -> bool:
        if self.ranks is not None and rank not in self.ranks:
            return False
        return sequence % self.call_sampling == 0

    def record(self, collective: str, sequence: int, rank: int,
               arrival: float, exit: float) -> None:
        self.events.append(TraceEvent(collective, sequence, rank, arrival, exit))
        _obs_current().metrics.counter("tracer.events").inc()

    def traced(self, ctx: ProcContext, collective: str, algorithm: str,
               args: CollArgs, data):
        """Generator wrapping a collective call with arrival/exit tracing.

        Drop-in replacement for :func:`repro.collectives.run_collective` —
        this is the simulated analogue of PMPI interposition.
        """
        sequence = self._next_sequence(collective, ctx.rank)
        arrival = ctx.time()
        result = yield from run_collective(ctx, collective, algorithm, args, data)
        if self.should_record(ctx.rank, sequence):
            self.record(collective, sequence, ctx.rank, arrival, ctx.time())
        return result

    # -- views ----------------------------------------------------------- #

    def calls(self, collective: str | None = None) -> dict[int, list[TraceEvent]]:
        """Events grouped by sequence number (optionally one collective only)."""
        out: dict[int, list[TraceEvent]] = {}
        for ev in self.events:
            if collective is not None and ev.collective != collective:
                continue
            out.setdefault(ev.sequence, []).append(ev)
        return out

    def num_calls(self, collective: str | None = None) -> int:
        return len(self.calls(collective))
