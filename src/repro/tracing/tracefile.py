"""Trace persistence: JSON-lines files, one event per line.

A portable, appendable format mirroring what the real tracing library would
write per rank: header line with metadata, then one JSON object per event.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import TraceFormatError
from repro.tracing.tracer import CollectiveTracer, TraceEvent

_HEADER_MAGIC = "repro-trace"
_VERSION = 1


def write_trace(path: str | Path, tracer: CollectiveTracer, metadata: dict | None = None) -> None:
    """Write all recorded events as JSONL with a metadata header."""
    path = Path(path)
    header = {
        "magic": _HEADER_MAGIC,
        "version": _VERSION,
        "num_events": len(tracer.events),
        "call_sampling": tracer.call_sampling,
        **(metadata or {}),
    }
    with open(path, "w") as fh:
        fh.write(json.dumps(header) + "\n")
        for ev in tracer.events:
            fh.write(
                json.dumps(
                    {
                        "c": ev.collective,
                        "s": ev.sequence,
                        "r": ev.rank,
                        "a": ev.arrival,
                        "e": ev.exit,
                    }
                )
                + "\n"
            )


def read_trace(path: str | Path) -> tuple[CollectiveTracer, dict]:
    """Read a trace file back into a tracer; returns ``(tracer, metadata)``."""
    path = Path(path)
    lines = path.read_text().splitlines()
    if not lines:
        raise TraceFormatError(f"{path}: empty trace file")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"{path}: bad header: {exc}") from None
    if header.get("magic") != _HEADER_MAGIC:
        raise TraceFormatError(f"{path}: not a repro trace file")
    if header.get("version") != _VERSION:
        raise TraceFormatError(f"{path}: unsupported version {header.get('version')}")
    tracer = CollectiveTracer(call_sampling=int(header.get("call_sampling", 1)))
    for lineno, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
            tracer.events.append(
                TraceEvent(obj["c"], int(obj["s"]), int(obj["r"]),
                           float(obj["a"]), float(obj["e"]))
            )
        except (json.JSONDecodeError, KeyError, ValueError) as exc:
            raise TraceFormatError(f"{path}:{lineno}: bad event: {exc}") from None
    return tracer, {k: v for k, v in header.items() if k not in ("magic", "version")}
