"""Deprecated shim: trace analysis moved to :mod:`repro.obs.analysis`.

This module path is kept so existing imports keep working; it re-exports
the tracer-based reconstruction helpers from their new home and warns on
import.  New code should import from ``repro.obs.analysis`` (or the
``repro.tracing`` package root, which re-exports without the warning).
"""

from __future__ import annotations

import warnings

warnings.warn(
    "repro.tracing.analysis moved to repro.obs.analysis; "
    "import from there (or from the repro.tracing package root) instead",
    DeprecationWarning,
    stacklevel=2,
)

from repro.obs.analysis import (  # noqa: E402
    _per_call_delays,
    average_delay_per_rank,
    max_observed_skew,
    pattern_from_trace,
)

__all__ = [
    "average_delay_per_rank",
    "max_observed_skew",
    "pattern_from_trace",
]
