"""Trace analysis: from raw arrival timestamps to replayable patterns.

Implements the paper's Section V-A procedure: "For each MPI_Alltoall call
..., we set the arrival time of the first process as time zero and subtract
the arrival times of all other processes from this value.  We apply this
method to all MPI_Alltoall calls ..., ultimately calculating the average
delay for each process across all calls."  The resulting per-rank average
delay is the *FT-Scenario* pattern when traced from FT.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TraceFormatError
from repro.patterns.generator import ArrivalPattern
from repro.tracing.tracer import CollectiveTracer


def _per_call_delays(
    tracer: CollectiveTracer, collective: str, num_ranks: int
) -> np.ndarray:
    """(num_calls, num_ranks) matrix of arrival delays relative to first arrival."""
    calls = tracer.calls(collective)
    if not calls:
        raise TraceFormatError(f"trace contains no {collective!r} calls")
    rows = []
    for sequence in sorted(calls):
        events = calls[sequence]
        by_rank = {ev.rank: ev for ev in events}
        if len(by_rank) != num_ranks:
            # Partial call (rank sampling active): skip incomplete records.
            continue
        arrivals = np.array([by_rank[r].arrival for r in range(num_ranks)])
        rows.append(arrivals - arrivals.min())
    if not rows:
        raise TraceFormatError(
            f"no complete {collective!r} calls covering all {num_ranks} ranks"
        )
    return np.stack(rows)


def average_delay_per_rank(
    tracer: CollectiveTracer, collective: str, num_ranks: int
) -> np.ndarray:
    """Fig. 1: mean arrival delay per rank across all traced calls."""
    return _per_call_delays(tracer, collective, num_ranks).mean(axis=0)


def max_observed_skew(
    tracer: CollectiveTracer, collective: str, num_ranks: int
) -> float:
    """The highest per-call arrival spread seen in the trace.

    The paper uses this as the maximum process skew when generating the
    artificial patterns that accompany the traced scenario (Section V-B).
    """
    delays = _per_call_delays(tracer, collective, num_ranks)
    return float(delays.max(axis=1).max())


def pattern_from_trace(
    tracer: CollectiveTracer,
    collective: str,
    num_ranks: int,
    name: str = "ft_scenario",
) -> ArrivalPattern:
    """The replayable application scenario: per-rank average delays as skews."""
    return ArrivalPattern(name, average_delay_per_rank(tracer, collective, num_ranks))
