"""Collective-call tracing (the paper's PMPI tracing library, Section V-A).

The tracer records, for every (sampled) collective call, each rank's
arrival and exit timestamps on a synchronized clock.  Analysis then derives
the per-rank average delay relative to the first-arriving rank (the paper's
Fig. 1) and converts it into a replayable arrival pattern — the
*FT-Scenario* when traced from the FT proxy application.
"""

from repro.tracing.tracer import CollectiveTracer, TraceEvent
# Analysis moved to repro.obs.analysis (one home for all trace analysis);
# importing from there directly avoids the deprecation shim's warning.
from repro.obs.analysis import (
    average_delay_per_rank,
    max_observed_skew,
    pattern_from_trace,
)
from repro.tracing.tracefile import read_trace, write_trace

__all__ = [
    "CollectiveTracer",
    "TraceEvent",
    "average_delay_per_rank",
    "max_observed_skew",
    "pattern_from_trace",
    "read_trace",
    "write_trace",
]
