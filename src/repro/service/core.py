"""The concurrent selection service: store-backed, cached, hot-reloadable.

A :class:`SelectionService` answers the paper's runtime question — *which
algorithm for this* ``(collective, comm_size, msg_bytes, pattern?)`` — from
a persistent :class:`~repro.store.TuningStore`:

* **Warm start**: on construction the strategy table and the per-pattern
  best-pick tables load from the store into memory; queries never touch
  SQLite on the hot path.
* **Lock-protected LRU cache**: resolved replies cache under one lock
  (:meth:`query_batch` amortizes it over many lookups), so the concurrent
  throughput floor is a dict probe, not a table walk.
* **Graceful degradation**: a query no stored rule covers falls back to
  the Open MPI fixed decision logic
  (:func:`repro.collectives.tuned.fixed_decision`) and says so in the
  reply's ``source`` field; only a collective *nobody* knows raises.
* **Hot reload**: when the store file (or its WAL sidecar) changes on
  disk, the next query reloads the tables and drops the cache;
  :meth:`reload` does the same on demand (the server wires it to SIGHUP).

Telemetry is always on: every service owns a live
:class:`~repro.obs.metrics.MetricsRegistry` (:attr:`SelectionService.metrics`)
that exists independently of any run-scoped :func:`repro.obs.session` —
``service.query_total{collective,source}`` (labeled per query coordinate
and resolve layer), ``service.cache_hit_total``,
``service.fallback_total``, ``service.reload_total``,
``service.error_total``, the ``service.query_seconds`` per-query latency
histogram (p50/p99 via :meth:`~repro.obs.metrics.Histogram.quantile`),
the ``service.batch_seconds`` whole-batch histogram, and the
``service.cache_entries`` gauge.  The registry feeds ``op:metrics`` on
the wire protocol and the ``--metrics-port`` Prometheus scrape endpoint;
the coarse process-local tallies remain on
:attr:`SelectionService.stats`.  A bounded
:class:`~repro.service.flight.FlightRecorder` keeps the K slowest and
erroring requests for ``op:debug`` and SIGUSR1 dumps.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from threading import Lock
from typing import TYPE_CHECKING, Any, Sequence

from repro.errors import ConfigurationError
from repro.obs.metrics import MetricsRegistry
from repro.service.flight import DEFAULT_CAPACITY, FlightRecorder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.selection.table import SelectionTable
    from repro.store import TuningStore

#: ``source`` values a reply can carry.
SOURCE_PATTERN = "store:pattern"   # per-pattern best pick from the store
SOURCE_STORE = "store"             # the strategy-built rule table
SOURCE_FALLBACK = "fallback"       # Open MPI fixed decision logic


@dataclass
class ServiceStats:
    """Coarse process-local tallies (the fine-grained, labeled view lives
    on :attr:`SelectionService.metrics`)."""

    queries: int = 0
    cache_hits: int = 0
    pattern_hits: int = 0
    fallbacks: int = 0
    errors: int = 0
    reloads: int = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "queries": self.queries,
            "cache_hits": self.cache_hits,
            "pattern_hits": self.pattern_hits,
            "fallbacks": self.fallbacks,
            "errors": self.errors,
            "reloads": self.reloads,
        }


@dataclass
class _Tables:
    """One immutable generation of loaded lookup state.

    Reload swaps the whole generation atomically (one reference write), so
    in-flight queries never see a half-loaded mix of old and new rules.
    """

    table: "SelectionTable | None" = None
    pattern_tables: dict[str, "SelectionTable"] = field(default_factory=dict)
    mtime: float = 0.0
    #: Monotonically increasing load counter (1 = the warm-start load);
    #: surfaced in ``op:stats`` so clients can detect a reload happened.
    generation: int = 0


class SelectionService:
    """Concurrent query front-end over a tuning store (see module docstring).

    ``store`` may be a :class:`~repro.store.TuningStore`, a path, or
    ``None`` (then ``table`` must carry the rules and hot reload is off).
    ``cache_size`` bounds the reply LRU; ``fallback=False`` turns a rule
    miss into a :class:`ConfigurationError` instead of a fixed-decision
    answer; ``reload_interval`` throttles the store-mtime stat (seconds,
    0 checks on every query).  ``exclude_suspect`` (default on) refuses to
    serve rules whose every backing cell is lint-flagged suspect (see
    :mod:`repro.lint`); such queries get the fixed-decision fallback,
    source-tagged as usual.  ``flight_capacity`` bounds the slow-query
    flight recorder (slots per buffer, see
    :class:`~repro.service.flight.FlightRecorder`).
    """

    #: Max distinct (collective, source) label pairs before new ones
    #: collapse into "<other>" (see :meth:`_record_query`).
    _LABEL_CAP = 64

    def __init__(self, store: "TuningStore | str | Path | None" = None, *,
                 table: "SelectionTable | None" = None,
                 cache_size: int = 4096,
                 fallback: bool = True,
                 watch_store: bool = True,
                 reload_interval: float = 1.0,
                 exclude_suspect: bool = True,
                 flight_capacity: int = DEFAULT_CAPACITY) -> None:
        if store is None and table is None:
            raise ConfigurationError("service needs a store or a table")
        if cache_size < 1:
            raise ConfigurationError(f"cache_size must be >= 1, got {cache_size}")
        self._store = None
        self._owns_store = False
        if store is not None:
            from repro.store import open_store

            self._store, self._owns_store = open_store(store)
        self._explicit_table = table
        self.exclude_suspect = bool(exclude_suspect)
        self.cache_size = int(cache_size)
        self.fallback = bool(fallback)
        self.watch_store = bool(watch_store) and self._store is not None
        self.reload_interval = float(reload_interval)
        self.stats = ServiceStats()
        #: Service-scoped live registry — always on, independent of any
        #: run-scoped obs session (see module docstring for the schema).
        self.metrics = MetricsRegistry()
        self.flight = FlightRecorder(flight_capacity)
        self.started_wall = time.time()
        self._started_monotonic = time.monotonic()
        # Hot-path instruments, pre-resolved so a query costs dict probes
        # and attribute bumps, never metric-key construction.
        self._h_query = self.metrics.histogram("service.query_seconds")
        self._h_batch = self.metrics.histogram("service.batch_seconds")
        self._c_cache_hit = self.metrics.counter("service.cache_hit_total")
        self._c_fallback = self.metrics.counter("service.fallback_total")
        self._c_reload = self.metrics.counter("service.reload_total")
        self._c_error = self.metrics.counter("service.error_total")
        self._g_cache_entries = self.metrics.gauge("service.cache_entries")
        self._query_counters: dict[tuple[str, str], Any] = {}
        self._lock = Lock()
        self._cache: OrderedDict[tuple, dict] = OrderedDict()
        self._last_check = time.monotonic()
        self._generation = 0
        self._tables = self._load()

    # -- lifecycle ------------------------------------------------------- #

    def close(self) -> None:
        if self._store is not None and self._owns_store:
            self._store.close()

    def __enter__(self) -> "SelectionService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def strategy(self) -> str:
        """Strategy name of the active rule table ('' when fallback-only)."""
        table = self._tables.table
        return table.strategy_name if table is not None else ""

    @property
    def table_generation(self) -> int:
        """Load counter of the active table generation (1 = warm start)."""
        return self._tables.generation

    @property
    def store_path(self) -> str | None:
        """Filesystem path of the backing store (None when table-only)."""
        return str(self._store.path) if self._store is not None else None

    def uptime_seconds(self) -> float:
        """Seconds since this service instance was constructed."""
        return time.monotonic() - self._started_monotonic

    def cache_len(self) -> int:
        with self._lock:
            return len(self._cache)

    # -- loading and reloading ------------------------------------------- #

    def _load(self) -> _Tables:
        """Build one fresh generation of lookup tables."""
        from repro.errors import StoreError

        self._generation += 1
        if self._store is None:
            return _Tables(table=self._explicit_table,
                           generation=self._generation)
        try:
            table = self._store.load_table(
                exclude_suspect=self.exclude_suspect)
        except StoreError:
            # A store with no rules yet (e.g. a campaign still running) —
            # or one whose rules all derive from lint-flagged cells — is
            # served entirely by the fallback until clean rules appear.
            table = self._explicit_table
        return _Tables(table=table,
                       pattern_tables=self._store.load_pattern_tables(
                           exclude_suspect=self.exclude_suspect),
                       mtime=self._store.mtime(),
                       generation=self._generation)

    def reload(self) -> None:
        """Reload tables from the store and drop the reply cache."""
        tables = self._load()
        with self._lock:
            self._tables = tables
            self._cache.clear()
            self.stats.reloads += 1
        self._c_reload.inc()

    def _maybe_reload(self) -> None:
        if not self.watch_store:
            return
        now = time.monotonic()
        if now - self._last_check < self.reload_interval:
            return
        self._last_check = now
        if self._store.mtime() != self._tables.mtime:
            self.reload()

    # -- queries --------------------------------------------------------- #

    def query(self, collective: str, comm_size: int, msg_bytes: float,
              pattern: str | None = None) -> dict:
        """Resolve one selection query; returns the reply dict.

        Reply fields: the echoed coordinates plus ``algorithm``, ``source``
        (one of ``store:pattern`` / ``store`` / ``fallback``), and
        ``strategy`` (the rule table's name, '' for fallback answers).
        Raises :class:`ConfigurationError` for invalid coordinates or when
        no layer — store, pattern table, or fallback — can answer.
        """
        started = time.perf_counter()
        source: str | None = None
        cache_hit = False
        error: BaseException | None = None
        try:
            key = self._validate(collective, comm_size, msg_bytes, pattern)
            self._maybe_reload()
            with self._lock:
                self.stats.queries += 1
                reply = self._cache.get(key)
                if reply is not None:
                    self._cache.move_to_end(key)
                    self.stats.cache_hits += 1
                    cache_hit = True
                else:
                    reply = self._resolve(*key)
                    self._cache[key] = reply
                    if len(self._cache) > self.cache_size:
                        self._cache.popitem(last=False)
                self._g_cache_entries.set(len(self._cache))
                source = reply["source"]
                return dict(reply)
        except Exception as exc:
            self.stats.errors += 1
            error = exc
            raise
        finally:
            self._record_query(
                "query", time.perf_counter() - started, collective, source,
                cache_hit, error,
                (collective, comm_size, msg_bytes, pattern))

    def query_batch(self, queries: Sequence[dict]) -> list[dict]:
        """Resolve many queries with one reload check and one lock pass.

        Each entry is a dict of :meth:`query` keyword arguments.  The
        batch is all-or-nothing for *validation* errors (the wire layer
        degrades per-item instead — see
        :func:`repro.service.server.handle_request`).  Latency accounting:
        ``service.query_seconds`` receives one strictly per-query sample
        per item (its resolve time under the lock), and the whole batch —
        validation, reload check, lock acquisition — lands in
        ``service.batch_seconds``.
        """
        started = time.perf_counter()
        keys = [self._validate(q.get("collective"), q.get("comm_size"),
                               q.get("msg_bytes"), q.get("pattern"))
                for q in queries]
        self._maybe_reload()
        replies: list[dict] = []
        hits = 0
        with self._lock:
            self.stats.queries += len(keys)
            for key in keys:
                item_started = time.perf_counter()
                reply = self._cache.get(key)
                if reply is not None:
                    self._cache.move_to_end(key)
                    hits += 1
                    cache_hit = True
                else:
                    reply = self._resolve(*key)
                    self._cache[key] = reply
                    if len(self._cache) > self.cache_size:
                        self._cache.popitem(last=False)
                    cache_hit = False
                replies.append(dict(reply))
                self._record_query(
                    "batch-item", time.perf_counter() - item_started,
                    key[0], reply["source"], cache_hit, None, key)
            self._g_cache_entries.set(len(self._cache))
            self.stats.cache_hits += hits
        self._h_batch.observe(time.perf_counter() - started)
        return replies

    def _record_query(self, op: str, latency: float, collective,
                      source: str | None, cache_hit: bool,
                      error: BaseException | None, coords: tuple) -> None:
        """Per-query telemetry: latency histogram, labeled counter, flight."""
        self._h_query.observe(latency)
        if cache_hit:
            self._c_cache_hit.inc()
        if error is not None:
            self._c_error.inc()
        # Cardinality guard: non-string collectives collapse into one
        # "<invalid>" series instead of minting a label per garbage
        # request, and once _LABEL_CAP distinct (collective, source) pairs
        # exist, new pairs collapse into "<other>" — a client spraying
        # unique collective names cannot grow the registry unboundedly.
        label = (collective if isinstance(collective, str) else "<invalid>",
                 source or "error")
        counter = self._query_counters.get(label)
        if counter is None:
            if len(self._query_counters) >= self._LABEL_CAP:
                label = ("<other>", label[1])
                counter = self._query_counters.get(label)
            if counter is None:
                counter = self.metrics.counter(
                    "service.query_total",
                    {"collective": label[0], "source": label[1]})
                self._query_counters[label] = counter
        counter.inc()
        flight = self.flight
        if error is not None or latency > flight.fast_threshold:
            flight.record(
                op=op, latency=latency,
                request={"collective": str(coords[0]),
                         "comm_size": coords[1], "msg_bytes": coords[2],
                         "pattern": coords[3]},
                source=source, cache_hit=cache_hit,
                error=type(error).__name__ if error is not None else None,
                detail=str(error) if error is not None else None)

    # -- internals ------------------------------------------------------- #

    @staticmethod
    def _validate(collective, comm_size, msg_bytes, pattern) -> tuple:
        """Normalize one query into its cache key, rejecting bad shapes."""
        if not isinstance(collective, str) or not collective:
            raise ConfigurationError(
                f"collective must be a non-empty string, got {collective!r}"
            )
        if isinstance(comm_size, bool) or not isinstance(comm_size, int) \
                or comm_size <= 0:
            raise ConfigurationError(
                f"comm_size must be a positive integer, got {comm_size!r}"
            )
        if isinstance(msg_bytes, bool) \
                or not isinstance(msg_bytes, (int, float)) or msg_bytes < 0:
            raise ConfigurationError(
                f"msg_bytes must be a non-negative number, got {msg_bytes!r}"
            )
        if pattern is not None and not isinstance(pattern, str):
            raise ConfigurationError(
                f"pattern must be a string or null, got {pattern!r}"
            )
        return collective, comm_size, float(msg_bytes), pattern or None

    def _resolve(self, collective: str, comm_size: int, msg_bytes: float,
                 pattern: str | None) -> dict:
        """Layered lookup (called under the lock, result goes in the cache)."""
        tables = self._tables
        if pattern is not None:
            ptable = tables.pattern_tables.get(pattern)
            if ptable is not None:
                try:
                    algorithm = ptable.lookup(collective, comm_size, msg_bytes)
                except ConfigurationError:
                    pass
                else:
                    self.stats.pattern_hits += 1
                    return self._reply(collective, comm_size, msg_bytes,
                                       pattern, algorithm, SOURCE_PATTERN,
                                       ptable.strategy_name)
        if tables.table is not None:
            try:
                algorithm = tables.table.lookup(collective, comm_size,
                                                msg_bytes)
            except ConfigurationError:
                pass
            else:
                return self._reply(collective, comm_size, msg_bytes, pattern,
                                   algorithm, SOURCE_STORE,
                                   tables.table.strategy_name)
        if self.fallback:
            from repro.collectives.tuned import fixed_decision

            algorithm = fixed_decision(collective, comm_size, msg_bytes)
            self.stats.fallbacks += 1
            self._c_fallback.inc()
            return self._reply(collective, comm_size, msg_bytes, pattern,
                               algorithm, SOURCE_FALLBACK, "")
        raise ConfigurationError(
            f"no rule covers {collective!r} at comm_size={comm_size}, "
            f"msg_bytes={msg_bytes:g} (fallback disabled)"
        )

    @staticmethod
    def _reply(collective, comm_size, msg_bytes, pattern, algorithm, source,
               strategy) -> dict:
        return {
            "collective": collective,
            "comm_size": comm_size,
            "msg_bytes": msg_bytes,
            "pattern": pattern,
            "algorithm": algorithm,
            "source": source,
            "strategy": strategy,
        }


__all__ = [
    "SelectionService",
    "ServiceStats",
    "SOURCE_PATTERN",
    "SOURCE_STORE",
    "SOURCE_FALLBACK",
]
