"""The concurrent selection service: store-backed, cached, hot-reloadable.

A :class:`SelectionService` answers the paper's runtime question — *which
algorithm for this* ``(collective, comm_size, msg_bytes, pattern?)`` — from
a persistent :class:`~repro.store.TuningStore`:

* **Warm start**: on construction the strategy table and the per-pattern
  best-pick tables load from the store into memory; queries never touch
  SQLite on the hot path.
* **Lock-protected LRU cache**: resolved replies cache under one lock
  (:meth:`query_batch` amortizes it over many lookups), so the concurrent
  throughput floor is a dict probe, not a table walk.
* **Graceful degradation**: a query no stored rule covers falls back to
  the Open MPI fixed decision logic
  (:func:`repro.collectives.tuned.fixed_decision`) and says so in the
  reply's ``source`` field; only a collective *nobody* knows raises.
* **Hot reload**: when the store file (or its WAL sidecar) changes on
  disk, the next query reloads the tables and drops the cache;
  :meth:`reload` does the same on demand (the server wires it to SIGHUP).

Metrics flow through :mod:`repro.obs` when a session is open —
``service.query_total``, ``service.cache_hit_total``,
``service.fallback_total``, ``service.reload_total``, and the
``service.query_seconds`` latency histogram — and the same numbers are
always available process-locally via :attr:`SelectionService.stats`.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from threading import Lock
from typing import TYPE_CHECKING, Sequence

from repro.errors import ConfigurationError
from repro.obs.context import current as _obs_current

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.selection.table import SelectionTable
    from repro.store import TuningStore

#: ``source`` values a reply can carry.
SOURCE_PATTERN = "store:pattern"   # per-pattern best pick from the store
SOURCE_STORE = "store"             # the strategy-built rule table
SOURCE_FALLBACK = "fallback"       # Open MPI fixed decision logic


@dataclass
class ServiceStats:
    """Process-local counters mirrored into :mod:`repro.obs` when enabled."""

    queries: int = 0
    cache_hits: int = 0
    pattern_hits: int = 0
    fallbacks: int = 0
    errors: int = 0
    reloads: int = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "queries": self.queries,
            "cache_hits": self.cache_hits,
            "pattern_hits": self.pattern_hits,
            "fallbacks": self.fallbacks,
            "errors": self.errors,
            "reloads": self.reloads,
        }


@dataclass
class _Tables:
    """One immutable generation of loaded lookup state.

    Reload swaps the whole generation atomically (one reference write), so
    in-flight queries never see a half-loaded mix of old and new rules.
    """

    table: "SelectionTable | None" = None
    pattern_tables: dict[str, "SelectionTable"] = field(default_factory=dict)
    mtime: float = 0.0


class SelectionService:
    """Concurrent query front-end over a tuning store (see module docstring).

    ``store`` may be a :class:`~repro.store.TuningStore`, a path, or
    ``None`` (then ``table`` must carry the rules and hot reload is off).
    ``cache_size`` bounds the reply LRU; ``fallback=False`` turns a rule
    miss into a :class:`ConfigurationError` instead of a fixed-decision
    answer; ``reload_interval`` throttles the store-mtime stat (seconds,
    0 checks on every query).  ``exclude_suspect`` (default on) refuses to
    serve rules whose every backing cell is lint-flagged suspect (see
    :mod:`repro.lint`); such queries get the fixed-decision fallback,
    source-tagged as usual.
    """

    def __init__(self, store: "TuningStore | str | Path | None" = None, *,
                 table: "SelectionTable | None" = None,
                 cache_size: int = 4096,
                 fallback: bool = True,
                 watch_store: bool = True,
                 reload_interval: float = 1.0,
                 exclude_suspect: bool = True) -> None:
        if store is None and table is None:
            raise ConfigurationError("service needs a store or a table")
        if cache_size < 1:
            raise ConfigurationError(f"cache_size must be >= 1, got {cache_size}")
        self._store = None
        self._owns_store = False
        if store is not None:
            from repro.store import open_store

            self._store, self._owns_store = open_store(store)
        self._explicit_table = table
        self.exclude_suspect = bool(exclude_suspect)
        self.cache_size = int(cache_size)
        self.fallback = bool(fallback)
        self.watch_store = bool(watch_store) and self._store is not None
        self.reload_interval = float(reload_interval)
        self.stats = ServiceStats()
        self._lock = Lock()
        self._cache: OrderedDict[tuple, dict] = OrderedDict()
        self._last_check = time.monotonic()
        self._tables = self._load()

    # -- lifecycle ------------------------------------------------------- #

    def close(self) -> None:
        if self._store is not None and self._owns_store:
            self._store.close()

    def __enter__(self) -> "SelectionService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def strategy(self) -> str:
        """Strategy name of the active rule table ('' when fallback-only)."""
        table = self._tables.table
        return table.strategy_name if table is not None else ""

    def cache_len(self) -> int:
        with self._lock:
            return len(self._cache)

    # -- loading and reloading ------------------------------------------- #

    def _load(self) -> _Tables:
        """Build one fresh generation of lookup tables."""
        from repro.errors import StoreError

        if self._store is None:
            return _Tables(table=self._explicit_table)
        try:
            table = self._store.load_table(
                exclude_suspect=self.exclude_suspect)
        except StoreError:
            # A store with no rules yet (e.g. a campaign still running) —
            # or one whose rules all derive from lint-flagged cells — is
            # served entirely by the fallback until clean rules appear.
            table = self._explicit_table
        return _Tables(table=table,
                       pattern_tables=self._store.load_pattern_tables(
                           exclude_suspect=self.exclude_suspect),
                       mtime=self._store.mtime())

    def reload(self) -> None:
        """Reload tables from the store and drop the reply cache."""
        tables = self._load()
        with self._lock:
            self._tables = tables
            self._cache.clear()
            self.stats.reloads += 1
        _obs_current().metrics.counter("service.reload_total").inc()

    def _maybe_reload(self) -> None:
        if not self.watch_store:
            return
        now = time.monotonic()
        if now - self._last_check < self.reload_interval:
            return
        self._last_check = now
        if self._store.mtime() != self._tables.mtime:
            self.reload()

    # -- queries --------------------------------------------------------- #

    def query(self, collective: str, comm_size: int, msg_bytes: float,
              pattern: str | None = None) -> dict:
        """Resolve one selection query; returns the reply dict.

        Reply fields: the echoed coordinates plus ``algorithm``, ``source``
        (one of ``store:pattern`` / ``store`` / ``fallback``), and
        ``strategy`` (the rule table's name, '' for fallback answers).
        Raises :class:`ConfigurationError` for invalid coordinates or when
        no layer — store, pattern table, or fallback — can answer.
        """
        started = time.perf_counter()
        metrics = _obs_current().metrics
        metrics.counter("service.query_total").inc()
        try:
            key = self._validate(collective, comm_size, msg_bytes, pattern)
            self._maybe_reload()
            with self._lock:
                self.stats.queries += 1
                reply = self._cache.get(key)
                if reply is not None:
                    self._cache.move_to_end(key)
                    self.stats.cache_hits += 1
                    metrics.counter("service.cache_hit_total").inc()
                    return dict(reply)
                reply = self._resolve(*key)
                self._cache[key] = reply
                if len(self._cache) > self.cache_size:
                    self._cache.popitem(last=False)
                return dict(reply)
        except Exception:
            self.stats.errors += 1
            metrics.counter("service.error_total").inc()
            raise
        finally:
            metrics.histogram("service.query_seconds").observe(
                time.perf_counter() - started)

    def query_batch(self, queries: Sequence[dict]) -> list[dict]:
        """Resolve many queries with one reload check and one lock pass.

        Each entry is a dict of :meth:`query` keyword arguments.  The
        batch is all-or-nothing for *validation* errors (the wire layer
        degrades per-item instead — see
        :func:`repro.service.server.handle_request`).
        """
        started = time.perf_counter()
        metrics = _obs_current().metrics
        metrics.counter("service.query_total").inc(len(queries))
        keys = [self._validate(q.get("collective"), q.get("comm_size"),
                               q.get("msg_bytes"), q.get("pattern"))
                for q in queries]
        self._maybe_reload()
        replies: list[dict] = []
        hits = 0
        with self._lock:
            self.stats.queries += len(keys)
            for key in keys:
                reply = self._cache.get(key)
                if reply is not None:
                    self._cache.move_to_end(key)
                    hits += 1
                else:
                    reply = self._resolve(*key)
                    self._cache[key] = reply
                    if len(self._cache) > self.cache_size:
                        self._cache.popitem(last=False)
                replies.append(dict(reply))
            self.stats.cache_hits += hits
        if hits:
            metrics.counter("service.cache_hit_total").inc(hits)
        metrics.histogram("service.query_seconds").observe(
            time.perf_counter() - started)
        return replies

    # -- internals ------------------------------------------------------- #

    @staticmethod
    def _validate(collective, comm_size, msg_bytes, pattern) -> tuple:
        """Normalize one query into its cache key, rejecting bad shapes."""
        if not isinstance(collective, str) or not collective:
            raise ConfigurationError(
                f"collective must be a non-empty string, got {collective!r}"
            )
        if isinstance(comm_size, bool) or not isinstance(comm_size, int) \
                or comm_size <= 0:
            raise ConfigurationError(
                f"comm_size must be a positive integer, got {comm_size!r}"
            )
        if isinstance(msg_bytes, bool) \
                or not isinstance(msg_bytes, (int, float)) or msg_bytes < 0:
            raise ConfigurationError(
                f"msg_bytes must be a non-negative number, got {msg_bytes!r}"
            )
        if pattern is not None and not isinstance(pattern, str):
            raise ConfigurationError(
                f"pattern must be a string or null, got {pattern!r}"
            )
        return collective, comm_size, float(msg_bytes), pattern or None

    def _resolve(self, collective: str, comm_size: int, msg_bytes: float,
                 pattern: str | None) -> dict:
        """Layered lookup (called under the lock, result goes in the cache)."""
        tables = self._tables
        if pattern is not None:
            ptable = tables.pattern_tables.get(pattern)
            if ptable is not None:
                try:
                    algorithm = ptable.lookup(collective, comm_size, msg_bytes)
                except ConfigurationError:
                    pass
                else:
                    self.stats.pattern_hits += 1
                    return self._reply(collective, comm_size, msg_bytes,
                                       pattern, algorithm, SOURCE_PATTERN,
                                       ptable.strategy_name)
        if tables.table is not None:
            try:
                algorithm = tables.table.lookup(collective, comm_size,
                                                msg_bytes)
            except ConfigurationError:
                pass
            else:
                return self._reply(collective, comm_size, msg_bytes, pattern,
                                   algorithm, SOURCE_STORE,
                                   tables.table.strategy_name)
        if self.fallback:
            from repro.collectives.tuned import fixed_decision

            algorithm = fixed_decision(collective, comm_size, msg_bytes)
            self.stats.fallbacks += 1
            _obs_current().metrics.counter("service.fallback_total").inc()
            return self._reply(collective, comm_size, msg_bytes, pattern,
                               algorithm, SOURCE_FALLBACK, "")
        raise ConfigurationError(
            f"no rule covers {collective!r} at comm_size={comm_size}, "
            f"msg_bytes={msg_bytes:g} (fallback disabled)"
        )

    @staticmethod
    def _reply(collective, comm_size, msg_bytes, pattern, algorithm, source,
               strategy) -> dict:
        return {
            "collective": collective,
            "comm_size": comm_size,
            "msg_bytes": msg_bytes,
            "pattern": pattern,
            "algorithm": algorithm,
            "source": source,
            "strategy": strategy,
        }


__all__ = [
    "SelectionService",
    "ServiceStats",
    "SOURCE_PATTERN",
    "SOURCE_STORE",
    "SOURCE_FALLBACK",
]
