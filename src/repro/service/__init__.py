"""Selection-as-a-service: answer tuning queries fast and concurrently.

The serving half of the persistent selection pipeline (the durable half is
:mod:`repro.store`):

* :class:`SelectionService` — warm-starts from a tuning store, answers
  ``(collective, comm_size, msg_bytes, pattern?)`` through a
  lock-protected LRU cache, falls back to Open MPI's fixed decision logic
  when the store has no covering rule, and hot-reloads when the store
  changes (or on SIGHUP under ``repro-mpi serve``).
* :class:`SelectionServer` — a newline-delimited-JSON TCP front-end
  (thread per connection, structured error replies, optional
  :class:`JsonLogger` structured logs).
* :class:`SelectionClient` / :class:`InProcessClient` — the matching
  clients; the in-process one speaks the identical protocol without a
  socket.
* Live telemetry — every service owns an always-on metrics registry
  (``op:metrics``, Prometheus scraping via ``repro-mpi serve
  --metrics-port``) and a bounded :class:`FlightRecorder` of the slowest
  and erroring requests (``op:debug``, SIGUSR1).

CLI: ``repro-mpi serve`` and ``repro-mpi query``.  See
``docs/selection-service.md`` for the store schema, the wire protocol, and
hot-reload semantics.
"""

from repro.service.client import InProcessClient, SelectionClient
from repro.service.core import (
    SOURCE_FALLBACK,
    SOURCE_PATTERN,
    SOURCE_STORE,
    SelectionService,
    ServiceStats,
)
from repro.service.flight import FlightRecorder
from repro.service.server import (
    PROTOCOL_VERSION,
    JsonLogger,
    SelectionServer,
    debug_reply,
    handle_request,
    install_sighup_reload,
    install_sigusr1_dump,
    metrics_reply,
)

__all__ = [
    "SelectionService",
    "ServiceStats",
    "SelectionServer",
    "SelectionClient",
    "InProcessClient",
    "FlightRecorder",
    "JsonLogger",
    "handle_request",
    "metrics_reply",
    "debug_reply",
    "install_sighup_reload",
    "install_sigusr1_dump",
    "PROTOCOL_VERSION",
    "SOURCE_PATTERN",
    "SOURCE_STORE",
    "SOURCE_FALLBACK",
]
