"""Clients for the selection service: over TCP and in-process.

Both clients speak the exact same protocol: the TCP client writes NDJSON
lines to a socket; the in-process client JSON-round-trips each request
through :func:`repro.service.server.handle_request` directly, so tests and
embedded callers exercise the wire semantics — validation, structured
errors, reply shape — without a socket.

Replies with ``ok: false`` raise :class:`~repro.errors.ServiceError`
carrying the structured reply (pass ``check=False`` to get the raw reply
instead).
"""

from __future__ import annotations

import json
import socket
from threading import Lock
from typing import TYPE_CHECKING, Sequence

from repro.errors import ServiceError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.core import SelectionService


def _check(reply: dict, check: bool) -> dict:
    if check and not reply.get("ok"):
        raise ServiceError(
            f"{reply.get('error', 'Error')}: {reply.get('detail', '')}",
            reply=reply,
        )
    return reply


class _ClientBase:
    """The shared query surface; subclasses implement :meth:`request`."""

    def request(self, payload: dict) -> dict:
        raise NotImplementedError

    def query(self, collective: str, comm_size: int, msg_bytes: float,
              pattern: str | None = None, *, check: bool = True) -> dict:
        payload = {"op": "query", "collective": collective,
                   "comm_size": comm_size, "msg_bytes": msg_bytes}
        if pattern is not None:
            payload["pattern"] = pattern
        return _check(self.request(payload), check)

    def query_batch(self, queries: Sequence[dict], *,
                    check: bool = True) -> list[dict]:
        """One round trip for many queries; returns the per-item replies.

        With ``check=True`` a failed *batch* raises; per-item failures
        surface as ``ok: false`` entries either way (degrade, don't abort).
        """
        reply = _check(self.request({"op": "batch",
                                     "queries": list(queries)}), check)
        return reply["replies"]

    def ping(self) -> dict:
        return _check(self.request({"op": "ping"}), True)

    def stats(self) -> dict:
        return _check(self.request({"op": "stats"}), True)

    def metrics(self) -> dict:
        """Live metrics snapshot with per-histogram p50/p90/p99."""
        return _check(self.request({"op": "metrics"}), True)

    def debug(self) -> dict:
        """Flight-recorder dump plus stats and effective configuration."""
        return _check(self.request({"op": "debug"}), True)

    def reload(self) -> dict:
        return _check(self.request({"op": "reload"}), True)


class SelectionClient(_ClientBase):
    """Blocking NDJSON-over-TCP client (thread-safe; one in-flight request
    at a time per client — open one client per thread for parallelism)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 7453, *,
                 timeout: float = 10.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._rfile = self._sock.makefile("rb")
        self._wfile = self._sock.makefile("wb")
        self._lock = Lock()

    def request(self, payload: dict) -> dict:
        line = json.dumps(payload, separators=(",", ":")).encode() + b"\n"
        with self._lock:
            self._wfile.write(line)
            self._wfile.flush()
            reply = self._rfile.readline()
        if not reply:
            raise ServiceError("server closed the connection")
        try:
            return json.loads(reply)
        except ValueError as exc:
            raise ServiceError(f"malformed reply from server: {exc}") from None

    def close(self) -> None:
        for stream in (self._rfile, self._wfile, self._sock):
            try:
                stream.close()
            except OSError:  # pragma: no cover - best effort
                pass

    def __enter__(self) -> "SelectionClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class InProcessClient(_ClientBase):
    """Protocol-faithful client bound directly to a service instance."""

    def __init__(self, service: "SelectionService") -> None:
        self.service = service

    def request(self, payload: dict) -> dict:
        from repro.service.server import handle_request

        # The JSON round trip pins wire semantics: only JSON types cross,
        # exactly as over a socket.
        request = json.loads(json.dumps(payload))
        return json.loads(json.dumps(handle_request(self.service, request)))

    def close(self) -> None:
        pass

    def __enter__(self) -> "InProcessClient":
        return self

    def __exit__(self, *exc) -> None:
        pass


__all__ = ["SelectionClient", "InProcessClient"]
