"""Newline-delimited-JSON TCP front-end for the selection service.

Wire protocol (one JSON object per line, both directions)::

    -> {"collective": "alltoall", "comm_size": 16, "msg_bytes": 1024}
    <- {"ok": true, "collective": "alltoall", ..., "algorithm": "pairwise",
        "source": "store", "strategy": "robust_average"}

    -> {"op": "batch", "queries": [{...}, {...}]}
    <- {"ok": true, "op": "batch", "replies": [{"ok": true, ...}, ...]}

    -> {"op": "ping"}        <- {"ok": true, "op": "ping", "version": 1}
    -> {"op": "stats"}       <- {"ok": true, "op": "stats", "stats": {...}}
    -> {"op": "reload"}      <- {"ok": true, "op": "reload", "reloads": N}

``op`` defaults to ``"query"``.  Every failure — malformed JSON, a missing
field, an unknown collective — produces a structured error reply
``{"ok": false, "error": "<ExceptionName>", "detail": "..."}`` on the same
line; the connection stays up and the server never crashes on bad input.
In a batch, failures degrade per item.

:class:`SelectionServer` is a thread-per-connection
:class:`socketserver.ThreadingTCPServer`; requests on one connection
pipeline (send N lines, read N replies).  ``repro-mpi serve`` wires SIGHUP
to :meth:`~repro.service.core.SelectionService.reload` on top of the
service's own store-mtime watching.
"""

from __future__ import annotations

import json
import signal
import socketserver
import threading
from typing import TYPE_CHECKING

from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.core import SelectionService

#: Bumped when the wire protocol changes incompatibly.
PROTOCOL_VERSION = 1

#: Fields a query request may carry (plus "op").
_QUERY_FIELDS = ("collective", "comm_size", "msg_bytes", "pattern")


def error_reply(exc: BaseException) -> dict:
    """The structured error form of any exception."""
    name = type(exc).__name__ if isinstance(exc, ReproError) else "InternalError"
    return {"ok": False, "error": name, "detail": str(exc)}


def encode_reply(reply: dict) -> bytes:
    """One reply as a compact NDJSON line (the byte-identity unit the
    parity tests compare)."""
    return json.dumps(reply, sort_keys=True, separators=(",", ":")).encode() + b"\n"


def handle_request(service: "SelectionService", request: object) -> dict:
    """Dispatch one decoded request; always returns a reply dict.

    This is the whole protocol: the TCP handler and the in-process client
    both call it, so tests over :class:`~repro.service.client.InProcessClient`
    exercise exactly what the socket serves.
    """
    if not isinstance(request, dict):
        return {"ok": False, "error": "ProtocolError",
                "detail": f"request must be an object, got "
                          f"{type(request).__name__}"}
    op = request.get("op", "query")
    try:
        if op == "query":
            missing = [f for f in ("collective", "comm_size", "msg_bytes")
                       if f not in request]
            if missing:
                return {"ok": False, "error": "ProtocolError",
                        "detail": f"query missing fields {missing}"}
            return {"ok": True,
                    **service.query(**{f: request.get(f)
                                       for f in _QUERY_FIELDS})}
        if op == "batch":
            queries = request.get("queries")
            if not isinstance(queries, list):
                return {"ok": False, "error": "ProtocolError",
                        "detail": "batch needs a 'queries' list"}
            replies = []
            for q in queries:
                replies.append(handle_request(service, {**q, "op": "query"})
                               if isinstance(q, dict)
                               else {"ok": False, "error": "ProtocolError",
                                     "detail": "batch entries must be objects"})
            return {"ok": True, "op": "batch", "replies": replies}
        if op == "ping":
            return {"ok": True, "op": "ping", "version": PROTOCOL_VERSION}
        if op == "stats":
            return {"ok": True, "op": "stats",
                    "stats": service.stats.snapshot(),
                    "cache_entries": service.cache_len(),
                    "strategy": service.strategy}
        if op == "reload":
            service.reload()
            return {"ok": True, "op": "reload",
                    "reloads": service.stats.reloads}
        return {"ok": False, "error": "ProtocolError",
                "detail": f"unknown op {op!r}"}
    except Exception as exc:  # noqa: BLE001 - the wire never crashes
        return error_reply(exc)


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:  # pragma: no cover - exercised via TCP tests
        for line in self.rfile:
            line = line.strip()
            if not line:
                continue
            try:
                request = json.loads(line)
            except ValueError as exc:
                reply = {"ok": False, "error": "ProtocolError",
                         "detail": f"malformed JSON: {exc}"}
            else:
                reply = handle_request(self.server.service, request)
            try:
                self.wfile.write(encode_reply(reply))
                self.wfile.flush()
            except (BrokenPipeError, ConnectionResetError):
                return


class _TCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    service: "SelectionService"


class SelectionServer:
    """Serve a :class:`SelectionService` over TCP (NDJSON, one thread per
    connection).  ``port=0`` binds an ephemeral port — read it back from
    :attr:`address`."""

    def __init__(self, service: "SelectionService",
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.service = service
        self._tcp = _TCPServer((host, port), _Handler)
        self._tcp.service = service
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The (host, port) actually bound."""
        host, port = self._tcp.server_address[:2]
        return host, port

    def start(self) -> "SelectionServer":
        """Serve in a daemon thread (the test/embedding entry point)."""
        self._thread = threading.Thread(target=self._tcp.serve_forever,
                                        name="repro-selection-server",
                                        daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`stop` (the CLI path)."""
        self._tcp.serve_forever()

    def stop(self) -> None:
        self._tcp.shutdown()
        self._tcp.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "SelectionServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def install_sighup_reload(service: "SelectionService"):
    """Make SIGHUP hot-reload ``service``; returns the previous handler.

    Only possible from the main thread (a Python signal-module rule);
    callers on other threads should rely on the service's store-mtime
    watching instead.  Returns ``None`` when SIGHUP does not exist or this
    is not the main thread.
    """
    if not hasattr(signal, "SIGHUP"):  # pragma: no cover - non-POSIX
        return None
    if threading.current_thread() is not threading.main_thread():
        return None
    return signal.signal(signal.SIGHUP, lambda _sig, _frame: service.reload())


__all__ = [
    "PROTOCOL_VERSION",
    "SelectionServer",
    "handle_request",
    "encode_reply",
    "error_reply",
    "install_sighup_reload",
]
