"""Newline-delimited-JSON TCP front-end for the selection service.

Wire protocol (one JSON object per line, both directions)::

    -> {"collective": "alltoall", "comm_size": 16, "msg_bytes": 1024}
    <- {"ok": true, "collective": "alltoall", ..., "algorithm": "pairwise",
        "source": "store", "strategy": "robust_average"}

    -> {"op": "batch", "queries": [{...}, {...}]}
    <- {"ok": true, "op": "batch", "replies": [{"ok": true, ...}, ...]}

    -> {"op": "ping"}        <- {"ok": true, "op": "ping", "version": 1}
    -> {"op": "stats"}       <- {"ok": true, "op": "stats", "stats": {...}}
    -> {"op": "reload"}      <- {"ok": true, "op": "reload", "reloads": N}
    -> {"op": "metrics"}     <- {"ok": true, "op": "metrics",
                                 "metrics": {...}, "quantiles": {...}}
    -> {"op": "debug"}       <- {"ok": true, "op": "debug", "flight": {...},
                                 "stats": {...}, "config": {...}}

``op`` defaults to ``"query"``.  ``op:metrics`` snapshots the service's
live registry and pre-computes p50/p90/p99 for every histogram;
``op:debug`` dumps the slow-query flight recorder with the raw stats and
effective configuration.  Every failure — malformed JSON, a missing
field, an unknown collective — produces a structured error reply
``{"ok": false, "error": "<ExceptionName>", "detail": "..."}`` on the same
line; the connection stays up and the server never crashes on bad input.
In a batch, failures degrade per item.

:class:`SelectionServer` is a thread-per-connection
:class:`socketserver.ThreadingTCPServer`; requests on one connection
pipeline (send N lines, read N replies).  ``repro-mpi serve`` wires SIGHUP
to :meth:`~repro.service.core.SelectionService.reload` on top of the
service's own store-mtime watching, and SIGUSR1 to a flight-recorder dump
(:func:`install_sigusr1_dump`).  Pass a :class:`JsonLogger` to get
structured one-line-JSON logs: connection open/close, request errors, and
any request slower than ``slow_log_seconds``, each stamped with a request
sequence number drawn from the flight recorder's counter.
"""

from __future__ import annotations

import json
import signal
import socketserver
import sys
import threading
import time
from typing import TYPE_CHECKING, Any, TextIO

from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.core import SelectionService

#: Bumped when the wire protocol changes incompatibly.
PROTOCOL_VERSION = 1

#: Fields a query request may carry (plus "op").
_QUERY_FIELDS = ("collective", "comm_size", "msg_bytes", "pattern")


#: Histogram quantiles ``op:metrics`` pre-computes for every histogram.
METRICS_QUANTILES = (("p50", 0.5), ("p90", 0.9), ("p99", 0.99))


def error_reply(exc: BaseException) -> dict:
    """The structured error form of any exception."""
    name = type(exc).__name__ if isinstance(exc, ReproError) else "InternalError"
    return {"ok": False, "error": name, "detail": str(exc)}


class JsonLogger:
    """Thread-safe structured logger: one compact JSON object per line.

    Every record carries ``ts`` (epoch seconds), ``event``, the server's
    ``run_id`` when one was set, plus the caller's fields.  Infinities from
    empty histograms are not a concern here — callers pass plain scalars —
    but keys sort so lines diff cleanly.
    """

    def __init__(self, stream: TextIO | None = None,
                 run_id: str | None = None) -> None:
        self._stream = stream if stream is not None else sys.stderr
        self._lock = threading.Lock()
        self.run_id = run_id

    def log(self, event: str, **fields: Any) -> None:
        record: dict[str, Any] = {"ts": round(time.time(), 6), "event": event}
        if self.run_id:
            record["run_id"] = self.run_id
        record.update(fields)
        line = json.dumps(record, sort_keys=True, separators=(",", ":"),
                          default=str)
        with self._lock:
            self._stream.write(line + "\n")
            self._stream.flush()


def metrics_reply(service: "SelectionService") -> dict:
    """The ``op:metrics`` payload: registry snapshot + histogram quantiles."""
    snapshot = service.metrics.snapshot()
    quantiles: dict[str, dict] = {}
    for key, snap in snapshot.items():
        if snap.get("kind") != "histogram":
            continue
        hist = service.metrics.get(key)
        quantiles[key] = {label: hist.quantile(q)
                          for label, q in METRICS_QUANTILES}
        # JSON has no Infinity; an empty histogram's min/max sentinel
        # values must not poison the wire encoding.
        if snap["count"] == 0:
            snap["min"] = snap["max"] = None
    return {"ok": True, "op": "metrics", "metrics": snapshot,
            "quantiles": quantiles,
            "uptime_seconds": service.uptime_seconds()}


def debug_reply(service: "SelectionService") -> dict:
    """The ``op:debug`` payload: flight dump, stats, and configuration."""
    return {
        "ok": True,
        "op": "debug",
        "flight": service.flight.dump(),
        "stats": service.stats.snapshot(),
        "config": {
            "store_path": service.store_path,
            "strategy": service.strategy,
            "fallback": service.fallback,
            "cache_size": service.cache_size,
            "exclude_suspect": service.exclude_suspect,
            "watch_store": service.watch_store,
            "reload_interval": service.reload_interval,
            "flight_capacity": service.flight.capacity,
        },
        "table_generation": service.table_generation,
        "uptime_seconds": service.uptime_seconds(),
    }


def encode_reply(reply: dict) -> bytes:
    """One reply as a compact NDJSON line (the byte-identity unit the
    parity tests compare)."""
    return json.dumps(reply, sort_keys=True, separators=(",", ":")).encode() + b"\n"


def handle_request(service: "SelectionService", request: object) -> dict:
    """Dispatch one decoded request; always returns a reply dict.

    This is the whole protocol: the TCP handler and the in-process client
    both call it, so tests over :class:`~repro.service.client.InProcessClient`
    exercise exactly what the socket serves.
    """
    if not isinstance(request, dict):
        return {"ok": False, "error": "ProtocolError",
                "detail": f"request must be an object, got "
                          f"{type(request).__name__}"}
    op = request.get("op", "query")
    try:
        if op == "query":
            missing = [f for f in ("collective", "comm_size", "msg_bytes")
                       if f not in request]
            if missing:
                return {"ok": False, "error": "ProtocolError",
                        "detail": f"query missing fields {missing}"}
            return {"ok": True,
                    **service.query(**{f: request.get(f)
                                       for f in _QUERY_FIELDS})}
        if op == "batch":
            queries = request.get("queries")
            if not isinstance(queries, list):
                return {"ok": False, "error": "ProtocolError",
                        "detail": "batch needs a 'queries' list"}
            replies = []
            for q in queries:
                replies.append(handle_request(service, {**q, "op": "query"})
                               if isinstance(q, dict)
                               else {"ok": False, "error": "ProtocolError",
                                     "detail": "batch entries must be objects"})
            return {"ok": True, "op": "batch", "replies": replies}
        if op == "ping":
            return {"ok": True, "op": "ping", "version": PROTOCOL_VERSION}
        if op == "stats":
            return {"ok": True, "op": "stats",
                    "stats": service.stats.snapshot(),
                    "cache_entries": service.cache_len(),
                    "strategy": service.strategy,
                    "table_generation": service.table_generation,
                    "uptime_seconds": service.uptime_seconds(),
                    "flight": service.flight.occupancy()}
        if op == "metrics":
            return metrics_reply(service)
        if op == "debug":
            return debug_reply(service)
        if op == "reload":
            service.reload()
            return {"ok": True, "op": "reload",
                    "reloads": service.stats.reloads}
        return {"ok": False, "error": "ProtocolError",
                "detail": f"unknown op {op!r}"}
    except Exception as exc:  # noqa: BLE001 - the wire never crashes
        return error_reply(exc)


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:  # pragma: no cover - exercised via TCP tests
        logger: JsonLogger | None = self.server.logger
        slow_after = self.server.slow_log_seconds
        peer = "%s:%s" % self.client_address[:2]
        served = 0
        if logger is not None:
            logger.log("conn.open", peer=peer)
        try:
            for line in self.rfile:
                line = line.strip()
                if not line:
                    continue
                started = time.perf_counter()
                try:
                    request = json.loads(line)
                except ValueError as exc:
                    reply = {"ok": False, "error": "ProtocolError",
                             "detail": f"malformed JSON: {exc}"}
                else:
                    reply = handle_request(self.server.service, request)
                latency = time.perf_counter() - started
                served += 1
                if logger is not None:
                    if not reply.get("ok"):
                        logger.log("request.error", peer=peer,
                                   seq=self.server.service.flight.next_seq(),
                                   error=reply.get("error"),
                                   detail=reply.get("detail"),
                                   latency_ms=round(latency * 1e3, 3))
                    elif latency >= slow_after:
                        logger.log("request.slow", peer=peer,
                                   seq=self.server.service.flight.next_seq(),
                                   op=reply.get("op", "query"),
                                   latency_ms=round(latency * 1e3, 3))
                try:
                    self.wfile.write(encode_reply(reply))
                    self.wfile.flush()
                except (BrokenPipeError, ConnectionResetError):
                    return
        finally:
            if logger is not None:
                logger.log("conn.close", peer=peer, requests=served)


class _TCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    service: "SelectionService"
    logger: "JsonLogger | None"
    slow_log_seconds: float


class SelectionServer:
    """Serve a :class:`SelectionService` over TCP (NDJSON, one thread per
    connection).  ``port=0`` binds an ephemeral port — read it back from
    :attr:`address`.  ``logger`` turns on structured JSON connection /
    error / slow-request logs; ``slow_log_seconds`` sets the latency above
    which a successful request is logged as ``request.slow``."""

    def __init__(self, service: "SelectionService",
                 host: str = "127.0.0.1", port: int = 0, *,
                 logger: "JsonLogger | None" = None,
                 slow_log_seconds: float = 0.1) -> None:
        self.service = service
        self.logger = logger
        self._tcp = _TCPServer((host, port), _Handler)
        self._tcp.service = service
        self._tcp.logger = logger
        self._tcp.slow_log_seconds = float(slow_log_seconds)
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The (host, port) actually bound."""
        host, port = self._tcp.server_address[:2]
        return host, port

    def start(self) -> "SelectionServer":
        """Serve in a daemon thread (the test/embedding entry point)."""
        self._thread = threading.Thread(target=self._tcp.serve_forever,
                                        name="repro-selection-server",
                                        daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`stop` (the CLI path)."""
        self._tcp.serve_forever()

    def stop(self) -> None:
        self._tcp.shutdown()
        self._tcp.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "SelectionServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def install_sighup_reload(service: "SelectionService"):
    """Make SIGHUP hot-reload ``service``; returns the previous handler.

    Only possible from the main thread (a Python signal-module rule);
    callers on other threads should rely on the service's store-mtime
    watching instead.  Returns ``None`` when SIGHUP does not exist or this
    is not the main thread.
    """
    if not hasattr(signal, "SIGHUP"):  # pragma: no cover - non-POSIX
        return None
    if threading.current_thread() is not threading.main_thread():
        return None
    return signal.signal(signal.SIGHUP, lambda _sig, _frame: service.reload())


def install_sigusr1_dump(service: "SelectionService",
                         stream: TextIO | None = None):
    """Make SIGUSR1 dump the flight recorder as JSON; returns the previous
    handler.

    The dump (same payload as ``op:debug``) is written to ``stream``
    (default: stderr) so an operator can inspect the slowest and erroring
    requests of a live server with ``kill -USR1 <pid>`` — no client
    needed.  Returns ``None`` when SIGUSR1 does not exist or this is not
    the main thread (the same rules as :func:`install_sighup_reload`).
    """
    if not hasattr(signal, "SIGUSR1"):  # pragma: no cover - non-POSIX
        return None
    if threading.current_thread() is not threading.main_thread():
        return None
    out = stream if stream is not None else sys.stderr

    def _dump(_sig, _frame) -> None:
        json.dump(debug_reply(service), out, sort_keys=True, default=str)
        out.write("\n")
        out.flush()

    return signal.signal(signal.SIGUSR1, _dump)


__all__ = [
    "PROTOCOL_VERSION",
    "METRICS_QUANTILES",
    "SelectionServer",
    "JsonLogger",
    "handle_request",
    "encode_reply",
    "error_reply",
    "metrics_reply",
    "debug_reply",
    "install_sighup_reload",
    "install_sigusr1_dump",
]
