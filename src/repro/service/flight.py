"""A bounded flight recorder for the selection service's worst requests.

Production debugging of a low-latency service needs the *outliers*, not
the averages: histograms say p99 rose, the flight recorder says which
requests paid it.  :class:`FlightRecorder` keeps two bounded buffers:

* the **K slowest successful requests** (a min-heap keyed on latency — a
  new request is recorded only if it is slower than the current K-th, so
  steady-state cost on the hot path is one lock plus one float compare);
* the **last K erroring requests** (a ring — errors are rare and recency
  beats magnitude for them).

Each entry carries the query coordinates, resolve ``source``, cache
state, latency, and a monotonically increasing sequence number (the
request ID the structured logs share).  :meth:`dump` renders both buffers
JSON-ready for ``op:debug`` and the SIGUSR1 handler.
"""

from __future__ import annotations

import heapq
import time
from collections import deque
from threading import Lock

#: Default number of slots per buffer (slowest + errors).
DEFAULT_CAPACITY = 32


class FlightRecorder:
    """Bounded recorder of the slowest and erroring requests (thread-safe)."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        #: Lock-free mirror of :meth:`threshold` for hot-path pre-checks:
        #: 0.0 until the heap fills, then the current K-th latency.  Reads
        #: are racy but safe — a stale value only costs one extra locked
        #: :meth:`record` call that rejects the entry.
        self.fast_threshold = 0.0
        self._lock = Lock()
        self._seq = 0
        #: (latency, seq, entry) min-heap of the slowest successes.
        self._slow: list[tuple[float, int, dict]] = []
        self._errors: deque[dict] = deque(maxlen=self.capacity)
        self._recorded = 0

    def next_seq(self) -> int:
        """Allocate the next request sequence number (shared with logs)."""
        with self._lock:
            self._seq += 1
            return self._seq

    def record(self, *, seq: int | None = None, op: str = "query",
               latency: float = 0.0,
               request: dict | None = None,
               source: str | None = None,
               cache_hit: bool | None = None,
               error: str | None = None,
               detail: str | None = None) -> bool:
        """Consider one finished request; returns True if it was kept.

        Successful requests enter the slowest-K heap only when they beat
        the current threshold; errors always enter the error ring.
        """
        with self._lock:
            if seq is None:
                self._seq += 1
                seq = self._seq
            keep_slow = error is None and (
                len(self._slow) < self.capacity or latency > self._slow[0][0])
            if not keep_slow and error is None:
                return False
            entry = {
                "seq": seq,
                "op": op,
                "latency_seconds": latency,
                "wall_time": time.time(),
                "request": dict(request) if request else {},
            }
            if source is not None:
                entry["source"] = source
            if cache_hit is not None:
                entry["cache_hit"] = cache_hit
            self._recorded += 1
            if error is not None:
                entry["error"] = error
                if detail is not None:
                    entry["detail"] = detail
                self._errors.append(entry)
                return True
            if len(self._slow) < self.capacity:
                heapq.heappush(self._slow, (latency, seq, entry))
            else:
                heapq.heapreplace(self._slow, (latency, seq, entry))
            if len(self._slow) == self.capacity:
                self.fast_threshold = self._slow[0][0]
            return True

    def threshold(self) -> float:
        """Latency a request must beat to enter the slowest-K heap."""
        with self._lock:
            if len(self._slow) < self.capacity:
                return 0.0
            return self._slow[0][0]

    def occupancy(self) -> dict:
        """Ring occupancy for ``op:stats``: slots used per buffer."""
        with self._lock:
            return {"capacity": self.capacity,
                    "slow": len(self._slow),
                    "errors": len(self._errors),
                    "recorded": self._recorded,
                    "seq": self._seq}

    def dump(self) -> dict:
        """Both buffers as one JSON-ready payload (slowest first)."""
        with self._lock:
            slowest = [entry for _lat, _seq, entry in
                       sorted(self._slow, key=lambda t: (-t[0], t[1]))]
            return {"capacity": self.capacity,
                    "threshold_seconds": (self._slow[0][0]
                                          if len(self._slow) == self.capacity
                                          else 0.0),
                    "slowest": [dict(e) for e in slowest],
                    "errors": [dict(e) for e in self._errors],
                    "recorded": self._recorded}

    def clear(self) -> None:
        with self._lock:
            self._slow.clear()
            self._errors.clear()
            self.fast_threshold = 0.0


__all__ = ["FlightRecorder", "DEFAULT_CAPACITY"]
