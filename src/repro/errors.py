"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch one base class.  Subclasses separate the major failure domains:
simulation (deadlock, protocol misuse), configuration (bad platform or
pattern parameters), and data handling (malformed trace or pattern files).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """An error in the discrete-event simulation core."""


class DeadlockError(SimulationError):
    """The simulation can make no further progress but processes remain blocked.

    Carries the set of blocked ranks to aid debugging of collective
    schedules (a mismatched send/recv pair is the usual culprit).
    """

    def __init__(self, blocked_ranks: list[int], message: str = "") -> None:
        self.blocked_ranks = list(blocked_ranks)
        detail = message or "simulation deadlocked"
        super().__init__(f"{detail}; blocked ranks: {self.blocked_ranks}")


class ProtocolError(SimulationError):
    """A process used the simulated MPI API incorrectly.

    Examples: waiting twice on the same request, receiving with a negative
    source rank, or a collective invoked with inconsistent parameters.
    """


class ConfigurationError(ReproError):
    """Invalid platform, pattern, benchmark, or experiment configuration."""


class UnknownAlgorithmError(ConfigurationError):
    """Requested collective algorithm is not in the registry."""

    def __init__(self, collective: str, name: str, available: list[str]) -> None:
        self.collective = collective
        self.name = name
        self.available = sorted(available)
        super().__init__(
            f"unknown algorithm {name!r} for collective {collective!r}; "
            f"available: {self.available}"
        )


class TraceFormatError(ReproError):
    """A trace or arrival-pattern file could not be parsed."""


class StoreError(ReproError):
    """A tuning store is unreadable, corrupt, or newer than this code.

    Raised by :mod:`repro.store` for database-level failures — schema
    versions this code does not know, malformed payload rows, and files
    that are not SQLite databases.  Bad *inputs* to store operations keep
    raising :class:`ConfigurationError`.
    """


class ServiceError(ReproError):
    """A selection-service request failed.

    Carries the structured error reply (``reply``) a server or client
    produced, so callers can inspect the wire-level ``error`` code.
    """

    def __init__(self, message: str, reply: dict | None = None) -> None:
        self.reply = dict(reply) if reply else {}
        super().__init__(message)
